/**
 * @file
 * Tests for the DVS link extension: voltage-squared energy scaling,
 * the windowed utilization policy, and end-to-end savings behaviour.
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "core/simulation.hh"
#include "net/dvs_monitor.hh"
#include "power/dvs_link_model.hh"

namespace {

using namespace orion;
using namespace orion::net;
using namespace orion::power;

const tech::TechNode kTech = tech::TechNode::onChip100nm();

DvsLinkModel
makeModel()
{
    return DvsLinkModel(kTech, 3000.0, 64,
                        DvsLinkModel::defaultLevels(kTech.vdd));
}

TEST(DvsLinkModel, EnergyScalesWithVoltageSquared)
{
    const DvsLinkModel m = makeModel();
    const double e0 = m.traversalEnergy(32, 0);
    const double e2 = m.traversalEnergy(32, 2);
    EXPECT_DOUBLE_EQ(e0, m.base().traversalEnergy(32));
    EXPECT_NEAR(e2 / e0, (2.0 / 3.0) * (2.0 / 3.0), 1e-12);
}

TEST(DvsLinkModel, DefaultLadderIsDescending)
{
    const auto levels = DvsLinkModel::defaultLevels(1.2);
    ASSERT_EQ(levels.size(), 3u);
    EXPECT_DOUBLE_EQ(levels[0].vdd, 1.2);
    EXPECT_GT(levels[0].vdd, levels[1].vdd);
    EXPECT_GT(levels[1].vdd, levels[2].vdd);
}

TEST(DvsMonitor, IdleLinkDropsToLowestLevel)
{
    sim::EventBus bus;
    DvsPolicy policy;
    policy.windowCycles = 100;
    DvsLinkMonitor mon(bus, makeModel(), policy);

    // First traversal in window 0: still at nominal level 0.
    bus.emit({sim::EventType::LinkTraversal, 0, 0, 32, 0, 5});
    EXPECT_EQ(mon.linkLevel(0, 0), 0u);

    // Long silence, then a traversal far later: the near-zero
    // utilization of the elapsed windows selects the lowest level.
    bus.emit({sim::EventType::LinkTraversal, 0, 0, 32, 0, 1000});
    EXPECT_EQ(mon.linkLevel(0, 0), 2u);
}

TEST(DvsMonitor, BusyLinkStaysAtNominal)
{
    sim::EventBus bus;
    DvsPolicy policy;
    policy.windowCycles = 10;
    DvsLinkMonitor mon(bus, makeModel(), policy);

    // 100% utilization across several windows.
    for (sim::Cycle c = 0; c < 50; ++c)
        bus.emit({sim::EventType::LinkTraversal, 0, 0, 32, 0, c});
    EXPECT_EQ(mon.linkLevel(0, 0), 0u);
    EXPECT_DOUBLE_EQ(mon.savings(), 0.0);
}

TEST(DvsMonitor, ModerateLoadPicksMiddleLevel)
{
    sim::EventBus bus;
    DvsPolicy policy;
    policy.windowCycles = 10;
    policy.thresholds = {0.5, 0.25};
    DvsLinkMonitor mon(bus, makeModel(), policy);

    // 3 traversals per 10-cycle window = 0.3 utilization -> level 1.
    for (sim::Cycle w = 0; w < 5; ++w)
        for (sim::Cycle k = 0; k < 3; ++k)
            bus.emit({sim::EventType::LinkTraversal, 0, 0, 32, 0,
                      w * 10 + k});
    EXPECT_EQ(mon.linkLevel(0, 0), 1u);
}

TEST(DvsMonitor, LinksAreIndependent)
{
    sim::EventBus bus;
    DvsPolicy policy;
    policy.windowCycles = 10;
    DvsLinkMonitor mon(bus, makeModel(), policy);

    for (sim::Cycle c = 0; c < 40; ++c)
        bus.emit({sim::EventType::LinkTraversal, 1, 0, 32, 0, c});
    bus.emit({sim::EventType::LinkTraversal, 1, 3, 32, 0, 500});

    EXPECT_EQ(mon.linkLevel(1, 0), 0u); // busy
    // Link (1,3) was idle for 50 windows before its first traversal:
    // the elapsed empty windows already selected the lowest level.
    EXPECT_EQ(mon.linkLevel(1, 3), 2u);
    bus.emit({sim::EventType::LinkTraversal, 1, 3, 32, 0, 900});
    EXPECT_EQ(mon.linkLevel(1, 3), 2u); // idle history persists
}

TEST(DvsMonitor, BaselineTracksNominalEnergy)
{
    sim::EventBus bus;
    DvsLinkMonitor mon(bus, makeModel(), DvsPolicy{});
    const DvsLinkModel ref = makeModel();

    bus.emit({sim::EventType::LinkTraversal, 0, 0, 10, 0, 0});
    bus.emit({sim::EventType::LinkTraversal, 0, 0, 20, 0, 1});
    EXPECT_DOUBLE_EQ(mon.baselineEnergy(),
                     ref.nominalTraversalEnergy(10) +
                         ref.nominalTraversalEnergy(20));
    EXPECT_LE(mon.dvsEnergy(), mon.baselineEnergy());
}

TEST(DvsMonitor, ResetClearsEnergyKeepsLevels)
{
    sim::EventBus bus;
    DvsPolicy policy;
    policy.windowCycles = 10;
    DvsLinkMonitor mon(bus, makeModel(), policy);
    bus.emit({sim::EventType::LinkTraversal, 0, 0, 32, 0, 500});
    EXPECT_GT(mon.dvsEnergy(), 0.0);
    mon.reset();
    EXPECT_DOUBLE_EQ(mon.dvsEnergy(), 0.0);
    EXPECT_DOUBLE_EQ(mon.baselineEnergy(), 0.0);
}

TEST(DvsEndToEnd, SavingsShrinkWithLoad)
{
    const auto savings_at = [](double rate) {
        NetworkConfig cfg = NetworkConfig::vc64();
        TrafficConfig traffic;
        traffic.injectionRate = rate;
        SimConfig sim;
        sim.samplePackets = 1000;
        sim.maxCycles = 200000;
        Simulation s(cfg, traffic, sim);
        DvsLinkMonitor dvs(
            s.simulator().bus(),
            DvsLinkModel(cfg.tech, cfg.linkLengthUm, cfg.net.flitBits,
                         DvsLinkModel::defaultLevels(cfg.tech.vdd)),
            DvsPolicy{});
        s.run();
        return dvs.savings();
    };

    const double light = savings_at(0.01);
    const double heavy = savings_at(0.14);
    EXPECT_GT(light, 0.35);  // most links mostly idle
    EXPECT_LT(heavy, light); // savings shrink as links stay busy
    EXPECT_GE(heavy, 0.0);
}

} // namespace
