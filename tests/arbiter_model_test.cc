/**
 * @file
 * Tests for the arbiter power models (Table 4): capacitance
 * composition, the E_xb_ctr coupling rule, per-kind priority state,
 * and sweeps over requester counts.
 */

#include <gtest/gtest.h>

#include "power/arbiter_model.hh"
#include "power/crossbar_model.hh"
#include "tech/capacitance.hh"

namespace {

using namespace orion;
using namespace orion::power;
using namespace orion::tech;

const TechNode kTech = TechNode::onChip100nm();

TEST(MatrixArbiterModel, PriorityFlipFlopCount)
{
    // R(R-1)/2 triangular matrix.
    EXPECT_EQ(ArbiterModel(kTech, {4, ArbiterKind::Matrix, 0.0})
                  .priorityFlipFlops(),
              6u);
    EXPECT_EQ(ArbiterModel(kTech, {16, ArbiterKind::Matrix, 0.0})
                  .priorityFlipFlops(),
              120u);
}

TEST(RoundRobinArbiterModel, PriorityFlipFlopCount)
{
    EXPECT_EQ(ArbiterModel(kTech, {8, ArbiterKind::RoundRobin, 0.0})
                  .priorityFlipFlops(),
              8u);
}

TEST(MatrixArbiterModel, RequestCapFansOutToNorGates)
{
    // C_req = (R-1) C_g(T_N1) + wire.
    const unsigned r = 6;
    const ArbiterModel m(kTech, {r, ArbiterKind::Matrix, 0.0});
    const Transistor n1 = defaultTransistor(kTech, Role::ArbiterNor1);
    const double wire = cw(kTech, r * kTech.wirePitchUm);
    EXPECT_DOUBLE_EQ(m.requestCap(),
                     (r - 1) * cg(kTech, n1) + wire);
}

TEST(MatrixArbiterModel, GrantIncludesCrossbarControlCap)
{
    // E_xb_ctr is folded into E_arb: the grant line capacitance must
    // grow exactly by the crossbar control cap.
    const CrossbarModel xbar(kTech, {5, 5, 256, CrossbarKind::Matrix,
                                     0.0});
    const ArbiterModel with(kTech,
                            {4, ArbiterKind::Matrix, xbar.controlCap()});
    const ArbiterModel without(kTech, {4, ArbiterKind::Matrix, 0.0});
    EXPECT_NEAR(with.grantCap() - without.grantCap(), xbar.controlCap(),
                1e-20);
    // And grant energy is charged on every arbitration (no activity
    // factor): even a zero-delta arbitration pays it.
    EXPECT_NEAR(with.arbitrationEnergy(0, 0) -
                    without.arbitrationEnergy(0, 0),
                kTech.switchEnergy(xbar.controlCap()), 1e-18);
}

TEST(MatrixArbiterModel, EnergyLinearInDeltas)
{
    const ArbiterModel m(kTech, {4, ArbiterKind::Matrix, 0.0});
    const double e0 = m.arbitrationEnergy(0, 0);
    const double e_req = m.arbitrationEnergy(1, 0) - e0;
    const double e_pri = m.arbitrationEnergy(0, 1) - e0;
    EXPECT_GT(e_req, 0.0);
    EXPECT_GT(e_pri, 0.0);
    EXPECT_NEAR(m.arbitrationEnergy(3, 2), e0 + 3 * e_req + 2 * e_pri,
                1e-18);
}

TEST(MatrixArbiterModel, AvgEnergyUsesHalfRequestsAndFullRowFlip)
{
    const unsigned r = 8;
    const ArbiterModel m(kTech, {r, ArbiterKind::Matrix, 0.0});
    EXPECT_DOUBLE_EQ(m.avgArbitrationEnergy(),
                     m.arbitrationEnergy(r / 2, r - 1));
}

TEST(RoundRobinArbiterModel, AvgEnergyMovesTokenTwoFlips)
{
    const ArbiterModel m(kTech, {8, ArbiterKind::RoundRobin, 0.0});
    EXPECT_DOUBLE_EQ(m.avgArbitrationEnergy(), m.arbitrationEnergy(4, 2));
}

TEST(QueuingArbiterModel, UsesFifoEnergies)
{
    // The queuing arbiter is modeled hierarchically on the FIFO buffer
    // model: a grant always pays at least one queue read.
    const ArbiterModel m(kTech, {8, ArbiterKind::Queuing, 0.0});
    const BufferModel queue(kTech, BufferParams{8, 3, 1, 1});
    EXPECT_GT(m.arbitrationEnergy(0, 0), queue.readEnergy() * 0.99);
    // A request change also pays a queue write.
    EXPECT_GT(m.arbitrationEnergy(1, 0), m.arbitrationEnergy(0, 0));
}

TEST(ArbiterModel, GrantAlwaysCosts)
{
    // Exactly one grant per arbitration: energy never reaches zero.
    for (const auto kind : {ArbiterKind::Matrix, ArbiterKind::RoundRobin,
                            ArbiterKind::Queuing}) {
        const ArbiterModel m(kTech, {4, kind, 0.0});
        EXPECT_GT(m.arbitrationEnergy(0, 0), 0.0);
    }
}

/** Sweep over requester counts. */
class ArbiterSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ArbiterSweep, EnergyGrowsWithRequesters)
{
    const unsigned r = GetParam();
    for (const auto kind :
         {ArbiterKind::Matrix, ArbiterKind::RoundRobin}) {
        const ArbiterModel small(kTech, {r, kind, 0.0});
        const ArbiterModel big(kTech, {2 * r, kind, 0.0});
        EXPECT_GT(big.avgArbitrationEnergy(),
                  small.avgArbitrationEnergy());
    }
}

TEST_P(ArbiterSweep, ArbiterIsOrdersBelowDatapath)
{
    // The paper's Figure 5(c): arbiter power is < 1% of node power.
    // Per-op: one arbitration must cost far less than one 256-bit
    // buffer read (the 5% bound here is generous — at the paper's
    // R = 4 the ratio is well below 1%).
    const unsigned r = GetParam();
    const ArbiterModel arb(kTech, {r, ArbiterKind::Matrix, 0.0});
    const BufferModel buf(kTech, BufferParams{16, 256, 1, 1});
    const double bound = r <= 16 ? 0.05 : 0.10;
    EXPECT_LT(arb.avgArbitrationEnergy(), bound * buf.readEnergy());
}

INSTANTIATE_TEST_SUITE_P(Requesters, ArbiterSweep,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u));

} // namespace
