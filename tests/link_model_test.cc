/**
 * @file
 * Tests for the link power models: on-chip capacitive links vs.
 * constant-power chip-to-chip links (paper Sections 4.2 and 4.4).
 */

#include <gtest/gtest.h>

#include "power/link_model.hh"
#include "tech/capacitance.hh"

namespace {

using namespace orion;
using namespace orion::power;
using namespace orion::tech;

TEST(OnChipLink, WireCapAnchorsToPaperNumber)
{
    // 1.08 pF per 3 mm, plus the sized driver's diffusion.
    const TechNode t = TechNode::onChip100nm();
    const OnChipLinkModel link(t, 3000.0, 256);
    EXPECT_GT(link.wireCap(), 1.08e-12);
    EXPECT_LT(link.wireCap(), 1.6e-12);
}

TEST(OnChipLink, TraversalLinearInToggles)
{
    const TechNode t = TechNode::onChip100nm();
    const OnChipLinkModel link(t, 3000.0, 256);
    EXPECT_DOUBLE_EQ(link.traversalEnergy(0), 0.0);
    EXPECT_DOUBLE_EQ(link.traversalEnergy(200),
                     2.0 * link.traversalEnergy(100));
    EXPECT_DOUBLE_EQ(link.avgTraversalEnergy(),
                     link.traversalEnergy(128));
}

TEST(OnChipLink, EnergyGrowsWithLength)
{
    const TechNode t = TechNode::onChip100nm();
    const OnChipLinkModel short_link(t, 1000.0, 64);
    const OnChipLinkModel long_link(t, 9000.0, 64);
    EXPECT_GT(long_link.avgTraversalEnergy(),
              short_link.avgTraversalEnergy());
}

TEST(OnChipLink, PicojouleScalePerBit)
{
    const TechNode t = TechNode::onChip100nm();
    const OnChipLinkModel link(t, 3000.0, 256);
    const double per_bit = link.traversalEnergy(1);
    EXPECT_GT(per_bit, 0.1e-12);
    EXPECT_LT(per_bit, 10e-12);
}

TEST(ChipToChipLink, DefaultsToPaperThreeWatts)
{
    const ChipToChipLinkModel link;
    EXPECT_DOUBLE_EQ(link.powerWatts(), 3.0);
}

TEST(ChipToChipLink, EnergyIsTrafficInsensitive)
{
    // "These chip-to-chip links use differential signaling, and thus
    // consume almost the same power regardless of link activity."
    const ChipToChipLinkModel link(3.0);
    const double period = 1e-9; // 1 GHz
    EXPECT_DOUBLE_EQ(link.energyOver(period, 1000.0), 3.0e-6);
    // Scale check: double the cycles, double the energy.
    EXPECT_DOUBLE_EQ(link.energyOver(period, 2000.0),
                     2.0 * link.energyOver(period, 1000.0));
}

TEST(ChipToChipLink, PowerTimesTimeIdentity)
{
    const ChipToChipLinkModel link(1.5);
    const double period = 0.5e-9;
    const double cycles = 123456.0;
    EXPECT_DOUBLE_EQ(link.energyOver(period, cycles) / (period * cycles),
                     1.5);
}

} // namespace
