/**
 * @file
 * Tests for the FIFO buffer power model: each Table 2 equation is
 * recomputed independently here and checked against the model, plus
 * monotonicity/property sweeps over the architectural parameters.
 */

#include <gtest/gtest.h>

#include "power/buffer_model.hh"
#include "tech/capacitance.hh"

namespace {

using namespace orion;
using namespace orion::power;
using namespace orion::tech;

const TechNode kTech = TechNode::onChip100nm();

TEST(BufferModel, WordlineLengthMatchesTable2)
{
    // L_wl = F (w_cell + 2 (P_r + P_w) d_w)
    const BufferParams p{16, 64, 2, 1};
    const BufferModel m(kTech, p);
    const double expect =
        64.0 * (kTech.cellWidthUm + 2.0 * 3.0 * kTech.wirePitchUm);
    EXPECT_DOUBLE_EQ(m.wordlineLengthUm(), expect);
}

TEST(BufferModel, BitlineLengthMatchesTable2)
{
    // L_bl = B (h_cell + (P_r + P_w) d_w)
    const BufferParams p{16, 64, 2, 1};
    const BufferModel m(kTech, p);
    const double expect =
        16.0 * (kTech.cellHeightUm + 3.0 * kTech.wirePitchUm);
    EXPECT_DOUBLE_EQ(m.bitlineLengthUm(), expect);
}

TEST(BufferModel, WordlineCapMatchesTable2)
{
    // C_wl = 2 F C_g(T_p) + C_a(T_wd) + C_w(L_wl), with T_wd sized for
    // the pass-gate + wire load.
    const BufferParams p{8, 32, 1, 1};
    const BufferModel m(kTech, p);

    const Transistor t_p = defaultTransistor(kTech, Role::MemoryPass);
    const double wire = cw(kTech, m.wordlineLengthUm());
    const double load = 2.0 * 32.0 * cg(kTech, t_p) + wire;
    const Transistor t_wd =
        sizeDriverForLoad(kTech, Role::WordlineDriver, load);
    const double expect =
        2.0 * 32.0 * cg(kTech, t_p) + ca(kTech, t_wd) + wire;
    EXPECT_DOUBLE_EQ(m.wordlineCap(), expect);
}

TEST(BufferModel, BitlineCapsMatchTable2)
{
    const BufferParams p{8, 32, 1, 1};
    const BufferModel m(kTech, p);

    const Transistor t_p = defaultTransistor(kTech, Role::MemoryPass);
    const Transistor t_c = defaultTransistor(kTech, Role::Precharge);
    const Transistor t_bd = defaultTransistor(kTech, Role::BitlineDriver);
    const double wire = cw(kTech, m.bitlineLengthUm());

    // C_br = B C_d(T_p) + C_d(T_c) + C_w(L_bl)
    EXPECT_DOUBLE_EQ(m.readBitlineCap(),
                     8.0 * cd(kTech, t_p) + cd(kTech, t_c) + wire);
    // C_bw = B C_d(T_p) + C_a(T_bd) + C_w(L_bl)
    EXPECT_DOUBLE_EQ(m.writeBitlineCap(),
                     8.0 * cd(kTech, t_p) + ca(kTech, t_bd) + wire);
}

TEST(BufferModel, PrechargeAndCellCapsMatchTable2)
{
    const BufferParams p{8, 32, 2, 2};
    const BufferModel m(kTech, p);
    const Transistor t_p = defaultTransistor(kTech, Role::MemoryPass);
    const Transistor t_c = defaultTransistor(kTech, Role::Precharge);
    const Transistor t_m =
        defaultTransistor(kTech, Role::MemoryCellInverter);
    // C_chg = C_g(T_c)
    EXPECT_DOUBLE_EQ(m.prechargeCap(), cg(kTech, t_c));
    // C_cell = 2 (P_r + P_w) C_d(T_p) + 2 C_a(T_m)
    EXPECT_DOUBLE_EQ(m.cellCap(),
                     2.0 * 4.0 * cd(kTech, t_p) + 2.0 * ca(kTech, t_m));
}

TEST(BufferModel, ReadEnergyCompositionMatchesTable2)
{
    // E_read = E_wl + F (E_br + 2 E_chg + E_amp)
    const BufferParams p{16, 128, 1, 1};
    const BufferModel m(kTech, p);
    const double e_wl = kTech.switchEnergy(m.wordlineCap());
    const double e_br = kTech.switchEnergy(m.readBitlineCap());
    const double e_chg = kTech.switchEnergy(m.prechargeCap());
    const double expect =
        e_wl + 128.0 * (e_br + 2.0 * e_chg + m.senseAmpEnergy());
    EXPECT_DOUBLE_EQ(m.readEnergy(), expect);
}

TEST(BufferModel, WriteEnergyLinearInDeltas)
{
    // E_wrt = E_wl + delta_bw E_bw + delta_bc E_cell
    const BufferParams p{16, 128, 1, 1};
    const BufferModel m(kTech, p);
    const double e_wl = kTech.switchEnergy(m.wordlineCap());
    const double e_bw = kTech.switchEnergy(m.writeBitlineCap());
    const double e_cell = kTech.switchEnergy(m.cellCap());

    EXPECT_DOUBLE_EQ(m.writeEnergy(0, 0), e_wl);
    EXPECT_DOUBLE_EQ(m.writeEnergy(10, 3),
                     e_wl + 10.0 * e_bw + 3.0 * e_cell);
    EXPECT_DOUBLE_EQ(m.writeEnergy(128, 128),
                     e_wl + 128.0 * e_bw + 128.0 * e_cell);
}

TEST(BufferModel, AvgWriteUsesHalfBitlinesQuarterCells)
{
    const BufferParams p{16, 128, 1, 1};
    const BufferModel m(kTech, p);
    EXPECT_DOUBLE_EQ(m.avgWriteEnergy(), m.writeEnergy(64, 32));
}

TEST(BufferModel, AreaIsWordlineTimesBitline)
{
    const BufferParams p{64, 256, 1, 1};
    const BufferModel m(kTech, p);
    EXPECT_DOUBLE_EQ(m.areaUm2(),
                     m.wordlineLengthUm() * m.bitlineLengthUm());
}

/** Monotonicity sweeps: deeper/wider/more-ported buffers cost more. */
class BufferMonotonicity
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(BufferMonotonicity, ReadEnergyGrowsWithDepth)
{
    const auto [flits, bits] = GetParam();
    const BufferModel small(kTech, {flits, bits, 1, 1});
    const BufferModel big(kTech, {2 * flits, bits, 1, 1});
    EXPECT_GT(big.readEnergy(), small.readEnergy());
    EXPECT_GT(big.avgWriteEnergy(), small.avgWriteEnergy());
    EXPECT_GT(big.areaUm2(), small.areaUm2());
}

TEST_P(BufferMonotonicity, ReadEnergyGrowsWithWidth)
{
    const auto [flits, bits] = GetParam();
    const BufferModel narrow(kTech, {flits, bits, 1, 1});
    const BufferModel wide(kTech, {flits, 2 * bits, 1, 1});
    EXPECT_GT(wide.readEnergy(), narrow.readEnergy());
    EXPECT_GT(wide.areaUm2(), narrow.areaUm2());
}

TEST_P(BufferMonotonicity, PortsIncreaseCost)
{
    const auto [flits, bits] = GetParam();
    const BufferModel one(kTech, {flits, bits, 1, 1});
    const BufferModel two(kTech, {flits, bits, 2, 2});
    EXPECT_GT(two.readEnergy(), one.readEnergy());
    EXPECT_GT(two.cellCap(), one.cellCap());
    EXPECT_GT(two.areaUm2(), one.areaUm2());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BufferMonotonicity,
    ::testing::Values(std::tuple{4u, 32u}, std::tuple{8u, 64u},
                      std::tuple{16u, 128u}, std::tuple{64u, 256u},
                      std::tuple{268u, 32u}, std::tuple{2560u, 32u}));

TEST(BufferModel, PaperConfigEnergiesAreSanePicojoules)
{
    // WH64 input buffer: 64 flits x 256 bits. Energies should land in
    // the picojoule decade expected of 0.1 um SRAM of this size — a
    // coarse absolute-sanity guard against unit slips.
    const BufferModel m(kTech, {64, 256, 1, 1});
    EXPECT_GT(m.readEnergy(), 1e-12);
    EXPECT_LT(m.readEnergy(), 1e-9);
    EXPECT_GT(m.avgWriteEnergy(), 1e-13);
    EXPECT_LT(m.avgWriteEnergy(), 1e-9);
}

} // namespace
