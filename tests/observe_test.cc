/**
 * @file
 * Tests for the run-level observability layer: the structured logger,
 * run manifests, the sweep progress tracker / heartbeat file, phase
 * profiling and per-point resource accounting. The key guarantee
 * throughout is the observability contract: attaching any of these
 * never changes simulation results — reports stay bit-identical with
 * telemetry on or off.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.hh"
#include "core/config.hh"
#include "core/log.hh"
#include "core/manifest.hh"
#include "core/profile.hh"
#include "core/progress.hh"
#include "core/simulation.hh"
#include "core/sweep.hh"
#include "json_validator.hh"

namespace {

using namespace orion;
namespace log = core::log;

std::string
tempPath(const std::string& name)
{
    return testing::TempDir() + name;
}

std::string
slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TrafficConfig
uniform(double rate)
{
    TrafficConfig t;
    t.injectionRate = rate;
    return t;
}

SimConfig
smallRun()
{
    SimConfig s;
    s.samplePackets = 300;
    s.maxCycles = 100000;
    return s;
}

// --- Logger ---------------------------------------------------------

TEST(Log, LevelNamesRoundTrip)
{
    for (log::Level l : {log::Level::Debug, log::Level::Info,
                         log::Level::Warn, log::Level::Error}) {
        log::Level parsed = log::Level::Off;
        ASSERT_TRUE(log::parseLevel(log::levelName(l), parsed));
        EXPECT_EQ(parsed, l);
    }
    log::Level out = log::Level::Warn;
    EXPECT_FALSE(log::parseLevel("verbose", out));
    EXPECT_EQ(out, log::Level::Warn) << "junk must leave out unchanged";
    EXPECT_FALSE(log::parseLevel("", out));
}

TEST(Log, DisabledByDefault)
{
    log::Logger::instance().reset();
    EXPECT_FALSE(log::enabled(log::Level::Error));
    // No sink: event() must be a cheap no-op, not a crash.
    log::event(log::Level::Info, "test.noop", {log::u64("x", 1)});
}

TEST(Log, SinkEmitsValidJsonLines)
{
    const std::string path = tempPath("observe_log.jsonl");
    std::remove(path.c_str());
    log::configure(path, log::Level::Info);
    EXPECT_TRUE(log::enabled(log::Level::Info));
    EXPECT_FALSE(log::enabled(log::Level::Debug));

    log::event(log::Level::Info, "test.event",
               {log::str("text", "quote \" backslash \\ tab \t"),
                log::num("ratio", 0.25), log::u64("count", 42),
                log::boolean("flag", true)});
    log::event(log::Level::Debug, "test.hidden", {});
    log::diag(log::Level::Error, "test.diag", "");

    log::Logger::instance().reset();
    EXPECT_FALSE(log::enabled(log::Level::Error));

    const std::string contents = slurp(path);
    std::istringstream lines(contents);
    std::string line;
    unsigned n = 0;
    while (std::getline(lines, line)) {
        ++n;
        test::JsonValidator v(line);
        EXPECT_TRUE(v.valid()) << "not JSON: " << line;
    }
    EXPECT_EQ(n, 2u) << "debug event must be filtered at info level";
    EXPECT_NE(contents.find("\"event\":\"test.event\""),
              std::string::npos);
    EXPECT_NE(contents.find("\"count\":42"), std::string::npos);
    EXPECT_NE(contents.find("\"flag\":true"), std::string::npos);
    EXPECT_EQ(contents.find("test.hidden"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Log, JsonEscapeControlsAndQuotes)
{
    EXPECT_EQ(log::jsonEscape("plain"), "plain");
    EXPECT_EQ(log::jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(log::jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(log::jsonEscape("a\nb"), "a\\nb");
    const std::string esc = log::jsonEscape(std::string(1, '\x01'));
    EXPECT_EQ(esc, "\\u0001");
}

// --- Run manifests --------------------------------------------------

TEST(Manifest, SchemaValidJsonWithAllSections)
{
    core::RunManifest m = core::RunManifest::begin("observe_test");
    m.fingerprintHex = "00000000deadbeef";
    m.seed = 7;
    m.seeds = 2;
    m.ratePoints = 3;
    m.pointsTotal = 6;
    m.pointsCompleted = 5;
    m.pointsFailed = 1;
    m.pointsFromCheckpoint = 2;
    m.phases = {{"router_advance", 1.5, 0.75},
                {"channel_advance", 0.5, 0.25}};
    m.finish("ok");

    const std::string j = m.toJson();
    test::JsonValidator v(j);
    ASSERT_TRUE(v.valid()) << j;

    for (const char* key :
         {"\"schema\": \"orion-run-manifest-v1\"",
          "\"tool\": \"observe_test\"",
          "\"fingerprint\": \"00000000deadbeef\"",
          "\"stop_reason\": \"ok\"", "\"points\"", "\"build\"",
          "\"host\"", "\"rusage\"", "\"router_advance\"",
          "\"from_checkpoint\": 2"}) {
        EXPECT_NE(j.find(key), std::string::npos)
            << "missing " << key << " in:\n" << j;
    }
    // begin() stamps provenance; finish() stamps cost and times.
    EXPECT_FALSE(m.compiler.empty());
    EXPECT_FALSE(m.host.empty());
    EXPECT_GT(m.pid, 0);
    EXPECT_GE(m.endUnixSeconds, m.startUnixSeconds);
    EXPECT_GE(m.userCpuSeconds + m.sysCpuSeconds, 0.0);
    EXPECT_GT(m.maxRssKb, 0);
}

TEST(Manifest, WriteFileAtomicRoundTrip)
{
    const std::string path = tempPath("observe_manifest.json");
    core::writeFileAtomic(path, "first\n");
    EXPECT_EQ(slurp(path), "first\n");
    core::writeFileAtomic(path, "second\n");
    EXPECT_EQ(slurp(path), "second\n");
    // The staging file must not linger after the rename.
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
    std::remove(path.c_str());

    EXPECT_THROW(
        core::writeFileAtomic(testing::TempDir() +
                                  "no_such_dir/x.json",
                              "y"),
        std::runtime_error);
}

// --- Progress tracker / heartbeat -----------------------------------

TEST(Progress, CountsAndSnapshotWithoutHeartbeatFile)
{
    core::ProgressTracker::Options po;
    po.totalCells = 4;
    po.jobs = 2;
    po.label = "unit";
    core::ProgressTracker tracker(po);

    EXPECT_EQ(tracker.done(), 0u);
    EXPECT_LT(tracker.etaSeconds(), 0.0) << "no samples yet";

    const unsigned a = tracker.beginCell(0, 0);
    const unsigned b = tracker.beginCell(1, 0);
    EXPECT_NE(a, b);
    std::atomic<std::uint64_t>* cycles = tracker.cycleCounter(a);
    ASSERT_NE(cycles, nullptr);
    cycles->store(1234, std::memory_order_relaxed);

    {
        const std::string j = tracker.heartbeatJson();
        test::JsonValidator v(j);
        ASSERT_TRUE(v.valid()) << j;
        EXPECT_NE(j.find("\"schema\":\"orion-heartbeat-v1\""),
                  std::string::npos);
        EXPECT_NE(j.find("\"cycles\":1234"), std::string::npos)
            << "in-flight worker must be visible: " << j;
    }

    tracker.endCell(a, false, 0.01);
    tracker.endCell(b, true, 0.02);
    tracker.noteCached(); // a cell merged from a resumed journal
    tracker.beginCell(2, 0);
    // Scope-less cell abandoned: finalize() must not hang on it.

    EXPECT_EQ(tracker.done(), 3u);
    EXPECT_EQ(tracker.failed(), 1u);
    EXPECT_EQ(tracker.fromCheckpoint(), 1u);
    EXPECT_EQ(tracker.total(), 4u);
    EXPECT_GE(tracker.etaSeconds(), 0.0);
    tracker.finalize();
}

TEST(Progress, HeartbeatFileFinishedAndValid)
{
    const std::string path = tempPath("observe_hb.json");
    std::remove(path.c_str());
    {
        core::ProgressTracker::Options po;
        po.totalCells = 2;
        po.jobs = 1;
        po.heartbeatPath = path;
        po.heartbeatIntervalSeconds = 0.05;
        core::ProgressTracker tracker(po);

        // The heartbeat exists from the very start of the run.
        const std::string early_snapshot = slurp(path);
        test::JsonValidator early(early_snapshot);
        EXPECT_TRUE(early.valid()) << early_snapshot;

        core::ProgressScope s1(&tracker, 0, 0);
        s1.end(false);
        core::ProgressScope s2(&tracker, 1, 0);
        s2.end(false);
        tracker.finalize();
    }
    const std::string j = slurp(path);
    test::JsonValidator v(j);
    ASSERT_TRUE(v.valid()) << j;
    EXPECT_NE(j.find("\"finished\":true"), std::string::npos) << j;
    EXPECT_NE(j.find("\"done\":2"), std::string::npos) << j;
    EXPECT_NE(j.find("\"workers\":[]"), std::string::npos) << j;
    std::remove(path.c_str());
}

TEST(Progress, ScopeDestructionWithoutEndCountsAsFailure)
{
    core::ProgressTracker::Options po;
    po.totalCells = 1;
    core::ProgressTracker tracker(po);
    {
        core::ProgressScope scope(&tracker, 0, 0);
        // An exception escape destroys the scope without end().
    }
    EXPECT_EQ(tracker.done(), 1u);
    EXPECT_EQ(tracker.failed(), 1u);
    tracker.finalize();
}

TEST(Progress, NullTrackerScopeIsFree)
{
    core::ProgressScope scope(nullptr, 0, 0);
    scope.setAttempt(2);
    EXPECT_EQ(scope.cycles(), nullptr);
    scope.end(false);
}

// --- Observability does not change results --------------------------

TEST(Progress, SweepBitIdenticalWithTrackerAttached)
{
    const NetworkConfig net = NetworkConfig::vc16();
    const TrafficConfig traffic = uniform(0.03);
    const SimConfig sim = smallRun();
    const std::vector<double> rates = {0.02, 0.04, 0.06};

    const std::vector<SweepPoint> plain = Sweep::overRates(
        net, traffic, sim, rates, SweepOptions::withJobs(2));

    core::ProgressTracker::Options po;
    po.totalCells = rates.size();
    po.jobs = 2;
    core::ProgressTracker tracker(po);
    SweepOptions opts = SweepOptions::withJobs(2);
    opts.progress = &tracker;
    const std::vector<SweepPoint> tracked =
        Sweep::overRates(net, traffic, sim, rates, opts);
    tracker.finalize();

    EXPECT_EQ(tracker.done(), rates.size());
    EXPECT_EQ(tracker.failed(), 0u);
    ASSERT_EQ(plain.size(), tracked.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        // Bitwise, not approximate: the tracker must be a pure
        // observer of the simulated machine.
        EXPECT_EQ(core::exactDouble(plain[i].report.avgLatencyCycles),
                  core::exactDouble(
                      tracked[i].report.avgLatencyCycles));
        EXPECT_EQ(
            core::exactDouble(plain[i].report.networkPowerWatts),
            core::exactDouble(tracked[i].report.networkPowerWatts));
        EXPECT_EQ(plain[i].report.totalCycles,
                  tracked[i].report.totalCycles);
        // Fresh cells carry their execution cost.
        EXPECT_TRUE(tracked[i].resources.valid);
        EXPECT_GE(tracked[i].resources.wallSeconds, 0.0);
        EXPECT_GE(tracked[i].resources.cpuSeconds, 0.0);
    }
}

TEST(Progress, ResumedSweepReportsCarriedOverCells)
{
    const NetworkConfig net = NetworkConfig::vc16();
    const TrafficConfig traffic = uniform(0.03);
    const SimConfig sim = smallRun();
    const std::vector<double> rates = {0.02, 0.04, 0.06};
    const std::uint64_t fp =
        core::sweepFingerprint(net, traffic, sim, rates, 1);
    const std::string journal_path = tempPath("observe_journal.ckpt");
    std::remove(journal_path.c_str());

    {
        core::CheckpointJournal journal(journal_path, fp, false);
        SweepOptions opts = SweepOptions::withJobs(1);
        opts.journal = &journal;
        Sweep::overRates(net, traffic, sim, rates, opts);
    }

    const core::CheckpointLoad load =
        core::loadCheckpoint(journal_path, fp);
    ASSERT_EQ(load.entries.size(), rates.size());

    core::ProgressTracker::Options po;
    po.totalCells = rates.size();
    core::ProgressTracker tracker(po);
    SweepOptions opts = SweepOptions::withJobs(1);
    opts.resume = &load.entries;
    opts.progress = &tracker;
    const std::vector<SweepPoint> pts =
        Sweep::overRates(net, traffic, sim, rates, opts);
    tracker.finalize();

    EXPECT_EQ(tracker.done(), rates.size());
    EXPECT_EQ(tracker.fromCheckpoint(), rates.size())
        << "every cell was satisfied from the journal";
    for (const SweepPoint& p : pts) {
        EXPECT_TRUE(p.fromCheckpoint);
        EXPECT_FALSE(p.resources.valid)
            << "cached cells cost nothing in this run";
    }
    std::remove(journal_path.c_str());
}

TEST(Profile, SharesSumToOneAndReportsUnchanged)
{
    const NetworkConfig net = NetworkConfig::vc16();
    const TrafficConfig traffic = uniform(0.05);
    SimConfig sim = smallRun();

    Simulation plain(net, traffic, sim);
    const Report base = plain.run();
    EXPECT_EQ(plain.phaseProfiler(), nullptr);

    sim.profilePhases = true;
    Simulation profiled(net, traffic, sim);
    const Report prof = profiled.run();

    EXPECT_EQ(core::exactDouble(base.avgLatencyCycles),
              core::exactDouble(prof.avgLatencyCycles));
    EXPECT_EQ(core::exactDouble(base.networkPowerWatts),
              core::exactDouble(prof.networkPowerWatts));
    EXPECT_EQ(base.totalCycles, prof.totalCycles);

    const core::PhaseProfiler* pp = profiled.phaseProfiler();
    ASSERT_NE(pp, nullptr);
    EXPECT_GT(pp->cycles(), 0u);
    EXPECT_GT(pp->sampledCycles(), 0u);
    const std::vector<core::PhaseShare> shares = pp->shares();
    ASSERT_FALSE(shares.empty());
    // Two share families, each a partition: the per-cycle kernel
    // stages (router/channel/audit/periodic) of the sampled cycle
    // time, and the run-level phases (warmup/measure/drain) of the
    // whole run's wall time.
    double cycle_total = 0.0;
    double run_total = 0.0;
    for (const core::PhaseShare& s : shares) {
        EXPECT_FALSE(s.name.empty());
        EXPECT_GE(s.share, 0.0);
        EXPECT_LE(s.share, 1.0);
        if (s.name == "warmup" || s.name == "measure" ||
            s.name == "drain")
            run_total += s.share;
        else
            cycle_total += s.share;
    }
    EXPECT_NEAR(cycle_total, 1.0, 1e-9)
        << "cycle-stage shares must partition the sampled time";
    EXPECT_NEAR(run_total, 1.0, 1e-9)
        << "run-phase shares must partition the run wall time";
}

TEST(Progress, ProgressCyclesCounterAdvances)
{
    const NetworkConfig net = NetworkConfig::vc16();
    const TrafficConfig traffic = uniform(0.05);
    SimConfig sim = smallRun();
    // The counter is stored every 4096 cycles; make the run long
    // enough to cross at least one update boundary.
    sim.samplePackets = 5000;
    std::atomic<std::uint64_t> cycles{0};
    sim.progressCycles = &cycles;

    Simulation simulation(net, traffic, sim);
    const Report report = simulation.run();
    EXPECT_GT(cycles.load(), 0u);
    EXPECT_LE(cycles.load(), report.totalCycles);
}

} // namespace
