/**
 * @file
 * Tests for the central-buffered router: VCT admission, per-output
 * packet queues, read/write port bandwidth limits, freedom from
 * head-of-line blocking across outputs, and its power events.
 */

#include <gtest/gtest.h>

#include <vector>

#include "router_test_util.hh"

namespace {

using namespace orion;
using namespace orion::router;
using namespace orion::test;
using sim::Event;
using sim::EventType;

RouterParams
cbBaseParams(unsigned pkt_len = 2)
{
    RouterParams p;
    p.ports = 5;
    p.vcs = 1;
    p.bufferDepth = 8; // input FIFO depth
    p.flitBits = 32;
    p.packetLength = pkt_len;
    p.deadlock = DeadlockMode::None;
    return p;
}

SingleRouterHarness
makeCbHarness(const RouterParams& p, const CentralBufferRouterParams& cb)
{
    return SingleRouterHarness(
        [&](sim::Simulator& s) {
            return std::make_unique<CentralBufferRouter>("cb", 0, p, cb,
                                                         s.bus());
        },
        1, p.bufferDepth);
}

std::vector<RouteHop>
oneHopRoute(unsigned out)
{
    return {RouteHop{static_cast<std::uint8_t>(out), 0, false},
            RouteHop{4, 0, false}};
}

TEST(CbRouter, ForwardsAPacket)
{
    const RouterParams p = cbBaseParams();
    SingleRouterHarness h =
        makeCbHarness(p, CentralBufferRouterParams{64, 2, 2, 2});

    sim::Rng rng(1);
    auto flits = makePacket(1, 0, 1, 2, p.flitBits, oneHopRoute(2), rng);
    h.inject(1, flits[0]);
    h.sim.run(1);
    h.inject(1, flits[1]);

    std::vector<Flit> out;
    for (int c = 0; c < 20 && out.size() < 2; ++c) {
        h.sim.run(1);
        h.readCreditReturn(1);
        if (auto f = h.readOutput(2))
            out.push_back(*f);
    }
    ASSERT_EQ(out.size(), 2u);
    EXPECT_TRUE(out[0].head);
    EXPECT_TRUE(out[1].tail);
    EXPECT_EQ(out[0].hop, 1u);
}

TEST(CbRouter, EmitsCentralBufferEvents)
{
    const RouterParams p = cbBaseParams();
    SingleRouterHarness h =
        makeCbHarness(p, CentralBufferRouterParams{64, 2, 2, 2});

    std::vector<Event> events;
    for (const auto t :
         {EventType::BufferWrite, EventType::BufferRead,
          EventType::CentralBufferWrite, EventType::CentralBufferRead,
          EventType::Arbitration}) {
        h.sim.bus().subscribe(
            t, [&](const Event& e) { events.push_back(e); });
    }

    sim::Rng rng(2);
    auto flits = makePacket(1, 0, 1, 2, p.flitBits, oneHopRoute(2), rng);
    h.inject(1, flits[0]);
    h.sim.run(1);
    h.inject(1, flits[1]);
    for (int c = 0; c < 15; ++c) {
        h.sim.run(1);
        h.readCreditReturn(1);
        h.readOutput(2);
    }

    const auto count = [&](EventType t) {
        int n = 0;
        for (const auto& e : events)
            if (e.type == t)
                ++n;
        return n;
    };
    // Each of the two flits: input FIFO write+read, central buffer
    // write+read; plus one write-port and one read-port arbitration
    // per flit.
    EXPECT_EQ(count(EventType::BufferWrite), 2);
    EXPECT_EQ(count(EventType::BufferRead), 2);
    EXPECT_EQ(count(EventType::CentralBufferWrite), 2);
    EXPECT_EQ(count(EventType::CentralBufferRead), 2);
    EXPECT_EQ(count(EventType::Arbitration), 4);
}

TEST(CbRouter, PipelineLatencyDelaysReadability)
{
    const RouterParams p = cbBaseParams(1);
    SingleRouterHarness fast = makeCbHarness(
        p, CentralBufferRouterParams{64, 2, 2, /*pipeline=*/1});
    SingleRouterHarness slow = makeCbHarness(
        p, CentralBufferRouterParams{64, 2, 2, /*pipeline=*/4});

    sim::Rng rng(3);
    const auto route = oneHopRoute(2);

    const auto latency = [&](SingleRouterHarness& h) {
        auto flits = makePacket(1, 0, 1, 1, p.flitBits, route, rng);
        h.inject(1, flits[0]);
        for (int c = 0; c < 30; ++c) {
            h.sim.run(1);
            h.readCreditReturn(1);
            if (h.readOutput(2))
                return c;
        }
        return -1;
    };
    const int fast_lat = latency(fast);
    const int slow_lat = latency(slow);
    ASSERT_GE(fast_lat, 0);
    ASSERT_GE(slow_lat, 0);
    EXPECT_EQ(slow_lat - fast_lat, 3);
}

TEST(CbRouter, NoHeadOfLineBlockingAcrossOutputs)
{
    // Packet A to output 2 is blocked (no downstream credits); packet
    // B behind it to output 0 still gets through — the CB decouples
    // outputs (the paper's core claim for CB routers).
    const RouterParams p = cbBaseParams(2);
    SingleRouterHarness h =
        makeCbHarness(p, CentralBufferRouterParams{64, 2, 2, 2});

    sim::Rng rng(4);
    // Exhaust output 2's downstream credits (depth 8 = 4 packets).
    for (int i = 0; i < 4; ++i) {
        auto f = makePacket(static_cast<std::uint64_t>(i), 0, 1, 2,
                            p.flitBits, oneHopRoute(2), rng);
        h.inject(1, f[0]);
        h.sim.run(1);
        h.readCreditReturn(1);
        h.readOutput(2);
        h.inject(1, f[1]);
        h.sim.run(1);
        h.readCreditReturn(1);
        h.readOutput(2);
    }
    for (int c = 0; c < 20; ++c) {
        h.sim.run(1);
        h.readCreditReturn(1);
        h.readOutput(2);
    }

    // A (to blocked output 2), then B (to free output 0), same input.
    auto a = makePacket(100, 0, 1, 2, p.flitBits, oneHopRoute(2), rng);
    auto b = makePacket(101, 0, 1, 2, p.flitBits, oneHopRoute(0), rng);
    h.inject(1, a[0]);
    h.sim.run(1);
    h.inject(1, a[1]);
    h.sim.run(1);
    h.readCreditReturn(1);
    h.inject(1, b[0]);
    h.sim.run(1);
    h.readCreditReturn(1);
    h.inject(1, b[1]);

    int b_flits = 0;
    for (int c = 0; c < 20; ++c) {
        h.sim.run(1);
        h.readCreditReturn(1);
        EXPECT_FALSE(h.readOutput(2).has_value());
        if (h.readOutput(0))
            ++b_flits;
    }
    EXPECT_EQ(b_flits, 2) << "CB router must not HoL-block across "
                             "outputs";
}

TEST(CbRouter, AdmissionWaitsForPoolSpace)
{
    // Tiny pool: capacity 2 flits = one 2-flit packet. A second packet
    // cannot be admitted until the first drains.
    const RouterParams p = cbBaseParams(2);
    SingleRouterHarness h =
        makeCbHarness(p, CentralBufferRouterParams{2, 2, 2, 1});
    auto& router = dynamic_cast<CentralBufferRouter&>(h.router());

    sim::Rng rng(5);
    const auto step = [&] {
        h.sim.run(1);
        h.readCreditReturn(1);
        h.readCreditReturn(3);
    };
    auto a = makePacket(1, 0, 1, 2, p.flitBits, oneHopRoute(2), rng);
    auto b = makePacket(2, 0, 1, 2, p.flitBits, oneHopRoute(0), rng);
    h.inject(1, a[0]);
    h.inject(3, b[0]);
    step();
    h.inject(1, a[1]);
    h.inject(3, b[1]);
    step();
    step();

    // Only one packet fits; pool must be exhausted.
    EXPECT_EQ(router.freeCentralSlots(), 0u);

    int out_flits = 0;
    for (int c = 0; c < 30 && out_flits < 4; ++c) {
        h.sim.run(1);
        h.readCreditReturn(1);
        h.readCreditReturn(3);
        if (h.readOutput(2))
            ++out_flits;
        if (h.readOutput(0))
            ++out_flits;
    }
    // Both packets eventually get through as space frees up.
    EXPECT_EQ(out_flits, 4);
    EXPECT_EQ(router.freeCentralSlots(), 2u);
}

TEST(CbRouter, WritePortBandwidthLimitsAdmissionRate)
{
    // One write port: two inputs with simultaneous traffic are
    // serialized into the pool at 1 flit/cycle.
    const RouterParams p = cbBaseParams(1);
    SingleRouterHarness one_port =
        makeCbHarness(p, CentralBufferRouterParams{64, 1, 2, 1});
    SingleRouterHarness two_port =
        makeCbHarness(p, CentralBufferRouterParams{64, 2, 2, 1});

    const auto throughput = [&](SingleRouterHarness& h) {
        sim::Rng rng(6);
        int received = 0;
        unsigned credits1 = p.bufferDepth;
        unsigned credits3 = p.bufferDepth;
        std::uint64_t id = 0;
        for (int c = 0; c < 40; ++c) {
            if (c < 40) {
                if (credits1 > 0) {
                    auto fa = makePacket(id++, 0, 1, 1, p.flitBits,
                                         oneHopRoute(2), rng);
                    h.inject(1, fa[0]);
                    --credits1;
                }
                if (credits3 > 0) {
                    auto fb = makePacket(id++, 0, 1, 1, p.flitBits,
                                         oneHopRoute(0), rng);
                    h.inject(3, fb[0]);
                    --credits3;
                }
            }
            h.sim.run(1);
            if (h.readCreditReturn(1))
                ++credits1;
            if (h.readCreditReturn(3))
                ++credits3;
            if (h.readOutput(2)) {
                ++received;
                h.returnCredit(2, Credit{0});
            }
            if (h.readOutput(0)) {
                ++received;
                h.returnCredit(0, Credit{0});
            }
        }
        return received;
    };
    const int one = throughput(one_port);
    const int two = throughput(two_port);
    EXPECT_GT(two, one + 10);
}

} // namespace
