/**
 * @file
 * Tests for network construction/wiring: link counts on tori vs
 * meshes, per-node link ownership, power-monitor node attribution
 * across the network, and mesh edge handling.
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "core/simulation.hh"

namespace {

using namespace orion;

TEST(NetworkWiring, TorusLinkCounts)
{
    Simulation s(NetworkConfig::vc16(), TrafficConfig{}, SimConfig{});
    auto& net = s.network();
    // 16 nodes x 4 network ports, every port wired on a torus.
    EXPECT_EQ(net.interRouterLinks(), 64u);
    for (int n = 0; n < 16; ++n)
        EXPECT_EQ(net.linksFrom(n), 4u);
}

TEST(NetworkWiring, MeshLinkCounts)
{
    NetworkConfig cfg = NetworkConfig::vc16();
    cfg.net.wrap = false;
    cfg.net.deadlock = router::DeadlockMode::None;
    Simulation s(cfg, TrafficConfig{}, SimConfig{});
    auto& net = s.network();
    // 4x4 mesh: 2 x 2 x (4 x 3) = 48 unidirectional links.
    EXPECT_EQ(net.interRouterLinks(), 48u);
    // Corner (0,0): 2 outgoing links; edge (1,0): 3; interior (1,1): 4.
    EXPECT_EQ(net.linksFrom(0), 2u);
    EXPECT_EQ(net.linksFrom(1), 3u);
    EXPECT_EQ(net.linksFrom(5), 4u);
}

TEST(NetworkWiring, ThreeDimensionalTorusLinkCounts)
{
    NetworkConfig cfg = NetworkConfig::vc16();
    cfg.net.dims = {2, 2, 2};
    Simulation s(cfg, TrafficConfig{}, SimConfig{});
    // 8 nodes x 6 network ports.
    EXPECT_EQ(s.network().interRouterLinks(), 48u);
    EXPECT_EQ(s.simulator().moduleCount(), 16u);
}

TEST(NetworkWiring, EnergyAttributedToEmittingNode)
{
    // Run a broadcast: the source node must accumulate the most
    // buffer energy (its local input port takes every packet).
    NetworkConfig cfg = NetworkConfig::vc16();
    TrafficConfig t;
    t.pattern = net::TrafficPattern::Broadcast;
    t.injectionRate = 0.1;
    t.broadcastSource = 5;
    SimConfig sim;
    sim.samplePackets = 800;
    sim.maxCycles = 100000;
    Simulation s(cfg, t, sim);
    ASSERT_TRUE(s.run().completed);

    auto& mon = s.monitor();
    const double src_buf =
        mon.energy(5, net::ComponentClass::Buffer);
    for (int n = 0; n < 16; ++n) {
        if (n == 5)
            continue;
        EXPECT_GT(src_buf, mon.energy(n, net::ComponentClass::Buffer))
            << "node " << n;
    }
}

TEST(NetworkWiring, SilentNetworkBurnsNoDynamicEnergy)
{
    NetworkConfig cfg = NetworkConfig::vc16();
    TrafficConfig t;
    t.injectionRate = 0.0;
    SimConfig sim;
    Simulation s(cfg, t, sim);
    s.step(2000);
    EXPECT_DOUBLE_EQ(s.monitor().totalEnergy(), 0.0);
    EXPECT_EQ(s.network().totalInjected(), 0u);
}

TEST(NetworkWiring, MeshCornerTrafficDelivers)
{
    // Corner-to-corner traffic exercises the missing-edge wiring.
    NetworkConfig cfg = NetworkConfig::vc16();
    cfg.net.wrap = false;
    cfg.net.deadlock = router::DeadlockMode::None;
    TrafficConfig t;
    t.pattern = net::TrafficPattern::Transpose; // corners swap
    t.injectionRate = 0.03;
    SimConfig sim;
    sim.samplePackets = 600;
    sim.maxCycles = 100000;
    Simulation s(cfg, t, sim);
    const Report r = s.run();
    EXPECT_TRUE(r.completed);
}

} // namespace
