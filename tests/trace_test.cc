/**
 * @file
 * Tests for trace parsing and trace-driven traffic replay, including
 * an end-to-end simulation on a recorded trace.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/config.hh"
#include "core/simulation.hh"
#include "net/trace.hh"
#include "net/traffic.hh"

namespace {

using namespace orion;
using namespace orion::net;

TEST(TraceParse, ParsesRecordsAndComments)
{
    std::istringstream in(
        "# a comment line\n"
        "0 1 2\n"
        "5 3 4   # trailing comment\n"
        "\n"
        "7 0 15\n");
    const auto records = Trace::parse(in);
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0], (TraceRecord{0, 1, 2}));
    EXPECT_EQ(records[1], (TraceRecord{5, 3, 4}));
    EXPECT_EQ(records[2], (TraceRecord{7, 0, 15}));
}

TEST(TraceParse, RejectsMalformedLines)
{
    std::istringstream a("1 2\n");
    EXPECT_THROW(Trace::parse(a), std::runtime_error);
    std::istringstream b("1 2 3 4\n");
    EXPECT_THROW(Trace::parse(b), std::runtime_error);
    std::istringstream c("-5 1 2\n");
    EXPECT_THROW(Trace::parse(c), std::runtime_error);
}

TEST(TraceParse, RejectsSelfSends)
{
    std::istringstream in("0 3 3\n");
    EXPECT_THROW(Trace::parse(in), std::runtime_error);
}

TEST(TraceValidate, ChecksNodeRange)
{
    std::vector<TraceRecord> ok = {{0, 0, 15}};
    EXPECT_NO_THROW(Trace::validate(ok, 16));
    std::vector<TraceRecord> bad = {{0, 0, 16}};
    EXPECT_THROW(Trace::validate(bad, 16), std::runtime_error);
    std::vector<TraceRecord> neg = {{0, -1, 3}};
    EXPECT_THROW(Trace::validate(neg, 16), std::runtime_error);
}

TEST(TraceReplay, InjectsAtRecordedCycles)
{
    const Topology topo({4, 4}, true);
    TrafficParams p;
    p.pattern = TrafficPattern::Trace;
    p.trace = std::make_shared<std::vector<TraceRecord>>(
        std::vector<TraceRecord>{{3, 5, 7}, {10, 5, 8}, {4, 2, 9}});
    TrafficGenerator gen(topo, p);
    sim::Rng rng(1);

    EXPECT_TRUE(gen.injects(5));
    EXPECT_TRUE(gen.injects(2));
    EXPECT_FALSE(gen.injects(0));

    // Before its cycle: nothing.
    EXPECT_FALSE(gen.maybeInject(5, 2, rng).has_value());
    // At its cycle: the recorded destination.
    EXPECT_EQ(gen.maybeInject(5, 3, rng), 7);
    // One packet per call; the next is due at cycle 10.
    EXPECT_FALSE(gen.maybeInject(5, 5, rng).has_value());
    EXPECT_EQ(gen.maybeInject(5, 10, rng), 8);
    EXPECT_FALSE(gen.maybeInject(5, 100, rng).has_value());

    EXPECT_EQ(gen.maybeInject(2, 4, rng), 9);
}

TEST(TraceReplay, LateRecordsReplayAsSoonAsPossible)
{
    const Topology topo({4, 4}, true);
    TrafficParams p;
    p.pattern = TrafficPattern::Trace;
    // Two records due at the same cycle: one per cycle comes out.
    p.trace = std::make_shared<std::vector<TraceRecord>>(
        std::vector<TraceRecord>{{5, 1, 2}, {5, 1, 3}});
    TrafficGenerator gen(topo, p);
    sim::Rng rng(1);
    EXPECT_EQ(gen.maybeInject(1, 6, rng), 2);
    EXPECT_EQ(gen.maybeInject(1, 7, rng), 3);
}

TEST(TraceReplay, UnsortedTraceIsSortedPerSource)
{
    const Topology topo({4, 4}, true);
    TrafficParams p;
    p.pattern = TrafficPattern::Trace;
    p.trace = std::make_shared<std::vector<TraceRecord>>(
        std::vector<TraceRecord>{{20, 1, 4}, {2, 1, 3}});
    TrafficGenerator gen(topo, p);
    sim::Rng rng(1);
    EXPECT_EQ(gen.maybeInject(1, 2, rng), 3);
    EXPECT_EQ(gen.maybeInject(1, 20, rng), 4);
}

TEST(TraceSimulation, EndToEndDeliversEveryTracePacket)
{
    // Build a small deterministic trace and run it through the full
    // network: every packet must be delivered to its destination.
    auto trace = std::make_shared<std::vector<TraceRecord>>();
    for (unsigned i = 0; i < 200; ++i) {
        const int src = static_cast<int>(i % 16);
        const int dst = static_cast<int>((i * 7 + 3) % 16);
        if (src == dst)
            continue;
        trace->push_back({1100 + i * 3, src, dst});
    }

    NetworkConfig cfg = NetworkConfig::vc16();
    TrafficConfig traffic;
    traffic.pattern = TrafficPattern::Trace;
    traffic.trace = trace;

    SimConfig sim;
    sim.samplePackets = trace->size();
    sim.maxCycles = 50000;
    Simulation s(cfg, traffic, sim);
    const Report r = s.run();

    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.sampleEjected, trace->size());
    EXPECT_GT(r.avgLatencyCycles, 10.0);
    EXPECT_GT(r.networkPowerWatts, 0.0);
}

} // namespace
