/**
 * @file
 * Cross-technology property tests: every power model must respond
 * correctly to feature-size and voltage scaling (geometry shrinks
 * with feature size, energy scales with Vdd^2, orderings between
 * components are preserved across nodes).
 */

#include <gtest/gtest.h>

#include "power/arbiter_model.hh"
#include "power/buffer_model.hh"
#include "power/central_buffer_model.hh"
#include "power/crossbar_model.hh"
#include "power/link_model.hh"
#include "tech/tech_node.hh"

namespace {

using namespace orion;
using namespace orion::power;
using namespace orion::tech;

/** Feature sizes to sweep (um). */
class TechSweep : public ::testing::TestWithParam<double>
{
  protected:
    TechNode
    node() const
    {
        return TechNode::scaled(GetParam(), 1.2, 1e9);
    }
};

TEST_P(TechSweep, BufferAreaScalesQuadratically)
{
    const TechNode t = node();
    const TechNode half = TechNode::scaled(GetParam() / 2.0, 1.2, 1e9);
    const BufferModel m1(t, {16, 64, 1, 1});
    const BufferModel m2(half, {16, 64, 1, 1});
    EXPECT_NEAR(m2.areaUm2() / m1.areaUm2(), 0.25, 1e-9);
}

TEST_P(TechSweep, SmallerFeatureLowersWireBoundEnergy)
{
    const TechNode t = node();
    const TechNode half = TechNode::scaled(GetParam() / 2.0, 1.2, 1e9);
    // Wordline/bitline wires shrink with the cell geometry, so read
    // energy must fall.
    const BufferModel m1(t, {64, 128, 1, 1});
    const BufferModel m2(half, {64, 128, 1, 1});
    EXPECT_LT(m2.readEnergy(), m1.readEnergy());

    const CrossbarModel x1(t, {5, 5, 128, CrossbarKind::Matrix, 0.0});
    const CrossbarModel x2(half,
                           {5, 5, 128, CrossbarKind::Matrix, 0.0});
    EXPECT_LT(x2.avgTraversalEnergy(), x1.avgTraversalEnergy());
}

TEST_P(TechSweep, ComponentOrderingsHoldAcrossNodes)
{
    // The relationships the paper's conclusions rest on must not be
    // artifacts of one technology point: arbiters are negligible
    // next to buffers; central buffers dwarf small FIFOs.
    const TechNode t = node();
    const BufferModel buf(t, {64, 256, 1, 1});
    const ArbiterModel arb(t, {4, ArbiterKind::Matrix, 0.0});
    EXPECT_LT(arb.avgArbitrationEnergy(), 0.05 * buf.readEnergy());

    const CentralBufferModel cbuf(t, {4, 2560, 32, 2, 2, 5, 2});
    const BufferModel fifo(t, {64, 32, 1, 1});
    EXPECT_GT(cbuf.avgReadEnergy(), 2.0 * fifo.readEnergy());
}

TEST_P(TechSweep, LinkEnergyProportionalToLength)
{
    const TechNode t = node();
    const OnChipLinkModel short_link(t, 1500.0, 64);
    const OnChipLinkModel long_link(t, 3000.0, 64);
    // Wire cap doubles; driver diffusion also doubles (sized for the
    // doubled load), so the ratio is exactly 2.
    EXPECT_NEAR(long_link.avgTraversalEnergy() /
                    short_link.avgTraversalEnergy(),
                2.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Features, TechSweep,
                         ::testing::Values(0.35, 0.25, 0.18, 0.13, 0.1,
                                           0.07));

/** Vdd sweep: every model's energy must scale as V^2. */
class VddSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(VddSweep, AllModelsScaleWithVddSquared)
{
    const double vdd = GetParam();
    const TechNode lo = TechNode::scaled(0.1, vdd, 1e9);
    const TechNode hi = TechNode::scaled(0.1, 2.0 * vdd, 1e9);
    const double k = 4.0;

    const BufferModel b_lo(lo, {16, 64, 1, 1});
    const BufferModel b_hi(hi, {16, 64, 1, 1});
    EXPECT_NEAR(b_hi.readEnergy() / b_lo.readEnergy(), k, 1e-9);
    EXPECT_NEAR(b_hi.avgWriteEnergy() / b_lo.avgWriteEnergy(), k, 1e-9);

    const CrossbarModel x_lo(lo, {5, 5, 64, CrossbarKind::Matrix, 0.0});
    const CrossbarModel x_hi(hi, {5, 5, 64, CrossbarKind::Matrix, 0.0});
    EXPECT_NEAR(x_hi.avgTraversalEnergy() / x_lo.avgTraversalEnergy(),
                k, 1e-9);

    const ArbiterModel a_lo(lo, {4, ArbiterKind::Matrix, 0.0});
    const ArbiterModel a_hi(hi, {4, ArbiterKind::Matrix, 0.0});
    EXPECT_NEAR(a_hi.avgArbitrationEnergy() /
                    a_lo.avgArbitrationEnergy(),
                k, 1e-9);

    const OnChipLinkModel l_lo(lo, 3000.0, 64);
    const OnChipLinkModel l_hi(hi, 3000.0, 64);
    EXPECT_NEAR(l_hi.avgTraversalEnergy() / l_lo.avgTraversalEnergy(),
                k, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Voltages, VddSweep,
                         ::testing::Values(0.5, 0.8, 1.0, 1.25));

} // namespace
