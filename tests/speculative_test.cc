/**
 * @file
 * Tests for the speculative VC router pipeline (Peh-Dally [15]): VA
 * and SA share a stage, cutting one cycle per hop while preserving
 * all flow-control and deadlock properties.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/config.hh"
#include "core/simulation.hh"
#include "router_test_util.hh"

namespace {

using namespace orion;
using namespace orion::router;
using namespace orion::test;
using sim::Event;
using sim::EventType;

RouterParams
specParams()
{
    RouterParams p;
    p.ports = 5;
    p.vcs = 2;
    p.bufferDepth = 8;
    p.flitBits = 64;
    p.packetLength = 1;
    p.deadlock = DeadlockMode::None;
    p.speculative = true;
    return p;
}

TEST(SpeculativeRouter, VaAndSaShareACycle)
{
    const RouterParams p = specParams();
    SingleRouterHarness h(
        [&](sim::Simulator& s) {
            return std::make_unique<CrossbarRouter>("spec", 0, p,
                                                    s.bus(), true);
        },
        p.vcs, p.bufferDepth);

    std::vector<Event> events;
    for (const auto t :
         {EventType::BufferWrite, EventType::VcAllocation,
          EventType::Arbitration, EventType::CrossbarTraversal}) {
        h.sim.bus().subscribe(
            t, [&](const Event& e) { events.push_back(e); });
    }

    sim::Rng rng(1);
    auto flits = makePacket(
        1, 0, 1, 1, p.flitBits,
        {RouteHop{2, 0, false}, RouteHop{4, 0, false}}, rng);
    h.inject(1, std::move(flits[0]));
    h.sim.run(5);

    // BW at 1; VA and SA both at 2; ST at 3 — one cycle earlier than
    // the non-speculative 3-stage pipeline.
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].type, EventType::BufferWrite);
    EXPECT_EQ(events[0].cycle, 1u);
    EXPECT_EQ(events[1].type, EventType::VcAllocation);
    EXPECT_EQ(events[1].cycle, 2u);
    EXPECT_EQ(events[2].type, EventType::Arbitration);
    EXPECT_EQ(events[2].cycle, 2u);
    EXPECT_EQ(events[3].type, EventType::CrossbarTraversal);
    EXPECT_EQ(events[3].cycle, 3u);
}

TEST(SpeculativeRouter, CutsZeroLoadLatencyByHops)
{
    // Network-level: the speculative VC16 should shave ~1 cycle per
    // router traversal (avg hops + 1) off zero-load latency.
    const auto zero_load = [](bool speculative) {
        NetworkConfig cfg = NetworkConfig::vc16();
        cfg.net.speculative = speculative;
        TrafficConfig t;
        t.injectionRate = 0.002;
        SimConfig s;
        s.samplePackets = 400;
        s.maxCycles = 400000;
        Simulation sim(cfg, t, s);
        return sim.run().avgLatencyCycles;
    };
    const double base = zero_load(false);
    const double spec = zero_load(true);
    EXPECT_LT(spec, base);
    EXPECT_NEAR(base - spec, 32.0 / 15.0 + 1.0, 1.2);
}

TEST(SpeculativeRouter, DeliversUnderLoadWithDateline)
{
    NetworkConfig cfg = NetworkConfig::vc16();
    cfg.net.speculative = true;
    TrafficConfig t;
    t.injectionRate = 0.1;
    SimConfig s;
    s.samplePackets = 2000;
    s.maxCycles = 200000;
    Simulation sim(cfg, t, s);
    const Report r = sim.run();
    EXPECT_TRUE(r.completed);
    EXPECT_FALSE(r.deadlockSuspected);
}

TEST(SpeculativeRouter, SurvivesOversaturationWithBubble)
{
    NetworkConfig cfg = NetworkConfig::vc64();
    cfg.net.speculative = true;
    TrafficConfig t;
    t.injectionRate = 0.25;
    SimConfig s;
    s.samplePackets = 3000;
    s.maxCycles = 30000;
    s.watchdogCycles = 3000;
    Simulation sim(cfg, t, s);
    const Report r = sim.run();
    EXPECT_FALSE(r.deadlockSuspected);
    EXPECT_GT(r.acceptedFlitsPerNodePerCycle, 0.2);
}

TEST(SpeculativeRouter, PowerUnchangedAtEqualThroughput)
{
    // Our simplified speculation reorders stages without extra
    // speculative arbitrations, so pre-saturation power should match
    // the baseline closely at equal load.
    const auto power_at = [](bool speculative) {
        NetworkConfig cfg = NetworkConfig::vc64();
        cfg.net.speculative = speculative;
        TrafficConfig t;
        t.injectionRate = 0.08;
        SimConfig s;
        s.samplePackets = 1500;
        s.maxCycles = 200000;
        Simulation sim(cfg, t, s);
        return sim.run().networkPowerWatts;
    };
    const double base = power_at(false);
    const double spec = power_at(true);
    EXPECT_NEAR(spec, base, 0.05 * base);
}

} // namespace
