/**
 * @file
 * The paper's Section 3.3 walkthrough as an executable test: a head
 * flit enters a simple 5-port wormhole router (4-flit buffers, 32-bit
 * flits, 5x5 crossbar, 4:1 arbiters), and
 *
 *   E_flit = E_wrt + E_arb + E_read + E_xb + E_link
 *
 * with each term triggered by exactly the event sequence the paper
 * describes: buffer write -> arbitration -> buffer read -> crossbar
 * traversal -> link traversal.
 */

#include <gtest/gtest.h>

#include <vector>

#include "power/arbiter_model.hh"
#include "power/buffer_model.hh"
#include "power/crossbar_model.hh"
#include "power/link_model.hh"
#include "router_test_util.hh"
#include "tech/tech_node.hh"

namespace {

using namespace orion;
using namespace orion::router;
using namespace orion::test;
using sim::Event;
using sim::EventType;

RouterParams
walkthroughParams()
{
    RouterParams p;
    p.ports = 5;
    p.vcs = 1;
    p.bufferDepth = 4;
    p.flitBits = 32;
    p.packetLength = 1;
    p.deadlock = DeadlockMode::None;
    return p;
}

SingleRouterHarness
makeHarness()
{
    const RouterParams p = walkthroughParams();
    return SingleRouterHarness(
        [&](sim::Simulator& s) {
            return std::make_unique<CrossbarRouter>(
                "wh", 0, p, s.bus(), /*va_enabled=*/false);
        },
        1, 4);
}

constexpr unsigned kWestIn = 1;   // -x input port (arbitrary choice)
constexpr unsigned kNorthOut = 2; // +y output, as in the paper

TEST(Walkthrough, HeadFlitEnergyIdentity)
{
    const RouterParams p = walkthroughParams();
    SingleRouterHarness h = makeHarness();

    std::vector<Event> events;
    for (const auto t :
         {EventType::BufferWrite, EventType::Arbitration,
          EventType::BufferRead, EventType::CrossbarTraversal,
          EventType::LinkTraversal}) {
        h.sim.bus().subscribe(
            t, [&](const Event& e) { events.push_back(e); });
    }

    // A single head flit routed to the north output.
    sim::Rng rng(42);
    auto flits = makePacket(
        1, 0, 1, 1, p.flitBits,
        {RouteHop{kNorthOut, 0, false}, RouteHop{4, 0, false}}, rng);
    h.inject(kWestIn, std::move(flits[0]));

    h.sim.run(5);

    // Event order per the paper's walkthrough: write, arbitration,
    // read, crossbar traversal, link traversal.
    ASSERT_EQ(events.size(), 5u);
    EXPECT_EQ(events[0].type, EventType::BufferWrite);
    EXPECT_EQ(events[1].type, EventType::Arbitration);
    EXPECT_EQ(events[2].type, EventType::BufferRead);
    EXPECT_EQ(events[3].type, EventType::CrossbarTraversal);
    EXPECT_EQ(events[4].type, EventType::LinkTraversal);

    // Stage timing: BW at cycle 1 (1-cycle input channel), SA at 2,
    // ST at 3 — the paper's 2-stage wormhole pipeline.
    EXPECT_EQ(events[0].cycle, 1u);
    EXPECT_EQ(events[1].cycle, 2u);
    EXPECT_EQ(events[2].cycle, 2u);
    EXPECT_EQ(events[3].cycle, 3u);
    EXPECT_EQ(events[4].cycle, 3u);

    // Energy identity: E_flit = E_wrt + E_arb + E_read + E_xb + E_link,
    // each term evaluated by the Table 2-4 models on the monitored
    // switching activity.
    const tech::TechNode tech = tech::TechNode::onChip100nm();
    const power::BufferModel buf(tech, {4, 32, 1, 1});
    const power::CrossbarModel xbar(
        tech, {5, 5, 32, power::CrossbarKind::Matrix, 0.0});
    const power::ArbiterModel arb(
        tech, {4, power::ArbiterKind::Matrix, xbar.controlCap()});
    const power::OnChipLinkModel link(tech, 3000.0, 32);

    const double e_wrt =
        buf.writeEnergy(events[0].deltaA, events[0].deltaB);
    const double e_arb =
        arb.arbitrationEnergy(events[1].deltaA, events[1].deltaB);
    const double e_read = buf.readEnergy();
    const double e_xb = xbar.traversalEnergy(events[3].deltaA);
    const double e_link = link.traversalEnergy(events[4].deltaA);
    const double e_flit = e_wrt + e_arb + e_read + e_xb + e_link;

    EXPECT_GT(e_wrt, 0.0);
    EXPECT_GT(e_arb, 0.0);
    EXPECT_GT(e_read, 0.0);
    EXPECT_GT(e_xb, 0.0);
    EXPECT_GT(e_link, 0.0);
    EXPECT_DOUBLE_EQ(e_flit,
                     e_wrt + e_arb + e_read + e_xb + e_link);
}

TEST(Walkthrough, FlitLeavesOnRequestedOutput)
{
    const RouterParams p = walkthroughParams();
    SingleRouterHarness h = makeHarness();

    sim::Rng rng(7);
    auto flits = makePacket(
        1, 0, 1, 1, p.flitBits,
        {RouteHop{kNorthOut, 0, false}, RouteHop{4, 0, false}}, rng);
    const auto payload = flits[0].payload;
    h.inject(kWestIn, std::move(flits[0]));

    std::optional<Flit> got;
    for (int c = 0; c < 8 && !got; ++c) {
        h.sim.run(1);
        got = h.readOutput(kNorthOut);
        // Nothing may leak out of other outputs.
        for (unsigned o = 0; o < p.ports; ++o) {
            if (o != kNorthOut) {
                EXPECT_FALSE(h.readOutput(o).has_value());
            }
        }
    }
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(got->head);
    EXPECT_TRUE(got->tail);
    EXPECT_EQ(got->hop, 1u); // route index advanced for the next router
    EXPECT_EQ(got->payload, payload);
}

TEST(Walkthrough, CreditReturnedWhenFlitLeavesBuffer)
{
    const RouterParams p = walkthroughParams();
    SingleRouterHarness h = makeHarness();

    sim::Rng rng(9);
    auto flits = makePacket(
        1, 0, 1, 1, p.flitBits,
        {RouteHop{kNorthOut, 0, false}, RouteHop{4, 0, false}}, rng);
    h.inject(kWestIn, std::move(flits[0]));

    bool credit_seen = false;
    for (int c = 0; c < 8 && !credit_seen; ++c) {
        h.sim.run(1);
        if (const auto credit = h.readCreditReturn(kWestIn)) {
            EXPECT_EQ(credit->vc, 0);
            credit_seen = true;
        }
    }
    EXPECT_TRUE(credit_seen);
}

TEST(Walkthrough, DownstreamCreditsAreConsumed)
{
    const RouterParams p = walkthroughParams();
    SingleRouterHarness h = makeHarness();

    // Downstream buffer holds 4 flits; send 4 single-flit packets and
    // verify the 5th stalls until a credit is returned.
    sim::Rng rng(11);
    int out_count = 0;
    for (int i = 0; i < 5; ++i) {
        auto flits = makePacket(
            static_cast<std::uint64_t>(i), 0, 1, 1, p.flitBits,
            {RouteHop{kNorthOut, 0, false}, RouteHop{4, 0, false}},
            rng);
        h.inject(kWestIn, std::move(flits[0]));
        h.sim.run(1);
        h.readCreditReturn(kWestIn); // drain
        if (h.readOutput(kNorthOut))
            ++out_count;
    }
    for (int c = 0; c < 12; ++c) {
        h.sim.run(1);
        h.readCreditReturn(kWestIn); // drain
        if (h.readOutput(kNorthOut))
            ++out_count;
    }
    EXPECT_EQ(out_count, 4); // 5th packet blocked on credits

    // Returning one credit releases the 5th.
    h.returnCredit(kNorthOut, Credit{0});
    bool fifth = false;
    for (int c = 0; c < 6 && !fifth; ++c) {
        h.sim.run(1);
        fifth = h.readOutput(kNorthOut).has_value();
    }
    EXPECT_TRUE(fifth);
}

} // namespace
