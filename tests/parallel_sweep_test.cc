/**
 * @file
 * Tests for the parallel sweep engine: the thread-pool executor, the
 * per-point seed derivation, and — the headline guarantee — that
 * fanning sweep points across workers produces bit-identical results
 * to the serial path at any job count.
 */

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/executor.hh"
#include "core/sweep.hh"
#include "sim/rng.hh"

namespace {

using namespace orion;

// --- executor ---------------------------------------------------------

TEST(ParallelFor, VisitsEveryIndexExactlyOnce)
{
    constexpr std::size_t kCount = 257;
    std::vector<std::atomic<int>> visits(kCount);
    core::parallelFor(4, kCount,
                      [&](std::size_t i) { visits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, SingleJobRunsInlineInOrder)
{
    std::vector<std::size_t> order;
    core::parallelFor(1, 5, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, PropagatesExceptions)
{
    EXPECT_THROW(core::parallelFor(3, 16,
                                   [&](std::size_t i) {
                                       if (i == 7)
                                           throw std::runtime_error(
                                               "boom");
                                   }),
                 std::runtime_error);
}

TEST(ParallelFor, ZeroJobsMeansHardwareConcurrency)
{
    EXPECT_GE(core::resolveJobs(0), 1u);
    EXPECT_EQ(core::resolveJobs(3), 3u);

    std::atomic<int> ran{0};
    core::parallelFor(0, 8, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, ReusableAcrossWaitRounds)
{
    core::ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&] { count.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(count.load(), (round + 1) * 10);
    }
}

// --- seed derivation --------------------------------------------------

TEST(DeriveSeed, DistinctAcrossGridAndDeterministic)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t r = 0; r < 16; ++r) {
        for (std::uint64_t k = 0; k < 16; ++k) {
            const std::uint64_t s = sim::deriveSeed(1, r, k);
            EXPECT_EQ(s, sim::deriveSeed(1, r, k));
            EXPECT_TRUE(seen.insert(s).second)
                << "collision at (" << r << ", " << k << ")";
        }
    }
    // Different base seeds give different streams.
    EXPECT_NE(sim::deriveSeed(1, 0, 0), sim::deriveSeed(2, 0, 0));
    // Index axes are not interchangeable.
    EXPECT_NE(sim::deriveSeed(1, 2, 3), sim::deriveSeed(1, 3, 2));
}

// --- sweeps: bit-identical at any job count ---------------------------

void
expectIdentical(const std::vector<AveragedPoint>& a,
                const std::vector<AveragedPoint>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        EXPECT_EQ(a[i].injectionRate, b[i].injectionRate);
        EXPECT_EQ(a[i].seeds, b[i].seeds);
        EXPECT_EQ(a[i].allCompleted, b[i].allCompleted);
        EXPECT_EQ(a[i].meanLatency, b[i].meanLatency);
        EXPECT_EQ(a[i].minLatency, b[i].minLatency);
        EXPECT_EQ(a[i].maxLatency, b[i].maxLatency);
        EXPECT_EQ(a[i].meanPowerWatts, b[i].meanPowerWatts);
        EXPECT_EQ(a[i].meanThroughput, b[i].meanThroughput);
    }
}

TEST(ParallelSweep, AveragedBitIdenticalAcrossJobCounts)
{
    SimConfig s;
    s.samplePackets = 200;
    s.maxCycles = 60000;
    s.seed = 7;
    TrafficConfig t;
    const std::vector<double> rates = {0.02, 0.05, 0.08};
    const unsigned seeds = 3;
    const NetworkConfig net = NetworkConfig::vc16();

    const auto serial = Sweep::overRatesAveraged(net, t, s, rates,
                                                 seeds, SweepOptions::withJobs(1));
    const auto two = Sweep::overRatesAveraged(net, t, s, rates, seeds,
                                              SweepOptions::withJobs(2));
    const auto hardware = Sweep::overRatesAveraged(
        net, t, s, rates, seeds, SweepOptions::withJobs(0));

    ASSERT_EQ(serial.size(), rates.size());
    expectIdentical(serial, two);
    expectIdentical(serial, hardware);
}

TEST(ParallelSweep, OverRatesBitIdenticalAcrossJobCounts)
{
    SimConfig s;
    s.samplePackets = 200;
    s.maxCycles = 60000;
    TrafficConfig t;
    const std::vector<double> rates = {0.02, 0.04, 0.06, 0.08};
    const NetworkConfig net = NetworkConfig::vc16();

    const auto serial =
        Sweep::overRates(net, t, s, rates, SweepOptions::withJobs(1));
    const auto parallel =
        Sweep::overRates(net, t, s, rates, SweepOptions::withJobs(2));

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        const Report& a = serial[i].report;
        const Report& b = parallel[i].report;
        EXPECT_EQ(serial[i].injectionRate, parallel[i].injectionRate);
        EXPECT_EQ(a.completed, b.completed);
        EXPECT_EQ(a.avgLatencyCycles, b.avgLatencyCycles);
        EXPECT_EQ(a.p99LatencyCycles, b.p99LatencyCycles);
        EXPECT_EQ(a.networkPowerWatts, b.networkPowerWatts);
        EXPECT_EQ(a.dynamicEnergyJoules, b.dynamicEnergyJoules);
        EXPECT_EQ(a.totalCycles, b.totalCycles);
        EXPECT_EQ(a.sampleEjected, b.sampleEjected);
        EXPECT_EQ(a.eventCounts, b.eventCounts);
        EXPECT_EQ(a.nodePowerWatts, b.nodePowerWatts);
    }
}

// --- failure isolation ------------------------------------------------

TEST(ParallelSweep, PoisonedPointIsIsolatedFromSiblings)
{
    // One deliberately failing point must not take the sweep (or the
    // worker pool) down with it: siblings complete normally and the
    // failed point carries its own diagnosis.
    SimConfig s;
    s.samplePackets = 200;
    s.maxCycles = 60000;
    s.debugPoisonRate = 0.04;
    TrafficConfig t;
    const auto points = Sweep::overRates(NetworkConfig::vc16(), t, s,
                                         {0.02, 0.04, 0.06},
                                         SweepOptions::withJobs(3));
    ASSERT_EQ(points.size(), 3u);
    EXPECT_TRUE(points[0].report.completed);
    EXPECT_FALSE(points[0].failure.has_value());
    EXPECT_TRUE(points[2].report.completed);
    EXPECT_FALSE(points[2].failure.has_value());

    ASSERT_TRUE(points[1].failure.has_value());
    EXPECT_EQ(points[1].failure->reason, StopReason::CheckFailure);
    EXPECT_NE(points[1].failure->message.find("poisoned"),
              std::string::npos)
        << points[1].failure->message;
    // A forensic snapshot was captured while the failed simulation
    // was still alive.
    EXPECT_NE(points[1].failure->forensicsJson.find("\"reason\""),
              std::string::npos);
    // The retry on a rederived seed was spent before giving up.
    EXPECT_EQ(points[1].attempts, 2u);
    EXPECT_EQ(points[1].report.stopReason, StopReason::CheckFailure);
}

TEST(ParallelSweep, TransientFailureRecoversViaRetry)
{
    SimConfig s;
    s.samplePackets = 200;
    s.maxCycles = 60000;
    s.debugPoisonRate = 0.04;
    s.debugPoisonTransient = true; // fails attempt 0, clean on retry
    TrafficConfig t;
    const auto points =
        Sweep::overRates(NetworkConfig::vc16(), t, s, {0.04});
    ASSERT_EQ(points.size(), 1u);
    EXPECT_FALSE(points[0].failure.has_value());
    EXPECT_TRUE(points[0].report.completed);
    EXPECT_EQ(points[0].attempts, 2u);
}

TEST(ParallelSweep, AveragedSweepExcludesFailedSeeds)
{
    SimConfig s;
    s.samplePackets = 200;
    s.maxCycles = 60000;
    s.debugPoisonRate = 0.04;
    TrafficConfig t;
    const auto pts = Sweep::overRatesAveraged(
        NetworkConfig::vc16(), t, s, {0.02, 0.04}, 2, SweepOptions::withJobs(2));
    ASSERT_EQ(pts.size(), 2u);
    EXPECT_TRUE(pts[0].allCompleted);
    EXPECT_EQ(pts[0].failedSeeds, 0u);
    // Every seed of the poisoned rate fails; the point is marked, the
    // sweep still returns it.
    EXPECT_FALSE(pts[1].allCompleted);
    EXPECT_EQ(pts[1].failedSeeds, 2u);
    EXPECT_NE(pts[1].firstFailure.find("poisoned"), std::string::npos);
}

TEST(ParallelSweep, PointsIndependentOfSweptSet)
{
    // A point's result depends only on (base seed, rate index, seed
    // index) — not on which other rates are swept alongside it.
    SimConfig s;
    s.samplePackets = 200;
    s.maxCycles = 60000;
    TrafficConfig t;
    const NetworkConfig net = NetworkConfig::vc16();

    const auto pair = Sweep::overRates(net, t, s, {0.03, 0.06});
    const auto alone = Sweep::overRates(net, t, s, {0.03});
    EXPECT_EQ(pair[0].report.avgLatencyCycles,
              alone[0].report.avgLatencyCycles);
    EXPECT_EQ(pair[0].report.networkPowerWatts,
              alone[0].report.networkPowerWatts);
}

} // namespace
