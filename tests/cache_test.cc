/**
 * @file
 * Tests for the persistent result cache behind orion_served
 * (core/cache.hh): hit/miss semantics, byte-identical round trips,
 * recovery after reopen, per-line quarantine of corruption, and the
 * segment-LRU size bound.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <dirent.h>

#include "core/cache.hh"
#include "core/checkpoint.hh"
#include "core/sweep.hh"

namespace {

using namespace orion;

core::CheckpointEntry
syntheticEntry(unsigned i)
{
    core::CheckpointEntry e;
    e.rateIndex = 0;
    e.seedIndex = 0;
    e.attempts = 1;
    e.report.completed = true;
    e.report.stopReason = StopReason::Completed;
    e.report.avgLatencyCycles = 17.25 + i;
    e.report.offeredLoad = 0.01 * (i + 1);
    e.report.sampleInjected = 100 + i;
    e.report.sampleEjected = 100 + i;
    e.report.nodePowerWatts = {0.125, 1.0 / 3.0, 0.75};
    return e;
}

std::string
freshDir(const std::string& name)
{
    const std::string dir = testing::TempDir() + name;
    // Scrub any leftovers from a previous run of this binary.
    if (DIR* d = ::opendir(dir.c_str())) {
        while (dirent* ent = ::readdir(d)) {
            const std::string n = ent->d_name;
            if (n != "." && n != "..")
                std::remove((dir + "/" + n).c_str());
        }
        ::closedir(d);
    }
    return dir;
}

std::vector<std::string>
segmentFiles(const std::string& dir)
{
    std::vector<std::string> out;
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr)
        return out;
    while (dirent* ent = ::readdir(d)) {
        const std::string n = ent->d_name;
        if (n.rfind("seg_", 0) == 0)
            out.push_back(dir + "/" + n);
    }
    ::closedir(d);
    std::sort(out.begin(), out.end());
    return out;
}

std::string
slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::string s((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
    return s;
}

void
spit(const std::string& path, const std::string& bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
}

TEST(ResultCache, MissThenHitRoundTripsBytes)
{
    core::CacheOptions opts;
    opts.dir = freshDir("orion_cache_hitmiss");
    core::ResultCache cache(opts);

    const core::CheckpointEntry e = syntheticEntry(1);
    core::CheckpointEntry out;
    EXPECT_FALSE(cache.lookup(41, out));
    cache.insert(41, e);
    ASSERT_TRUE(cache.lookup(41, out));
    // Byte identity through the wire format, not field-wise
    // approximation: the serve drill cmp(1)s these lines.
    EXPECT_EQ(core::serializeEntry(out), core::serializeEntry(e));

    const core::CacheStats s = cache.stats();
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.inserts, 1u);
    EXPECT_EQ(s.quarantined, 0u);
}

TEST(ResultCache, ReopenRecoversAcknowledgedInserts)
{
    core::CacheOptions opts;
    opts.dir = freshDir("orion_cache_reopen");
    std::vector<std::string> want;
    {
        core::ResultCache cache(opts);
        for (unsigned i = 0; i < 5; ++i) {
            cache.insert(100 + i, syntheticEntry(i));
            want.push_back(core::serializeEntry(syntheticEntry(i)));
        }
        // No clean shutdown call: destruction stands in for SIGKILL
        // (every insert was already fsync'd).
    }
    core::ResultCache cache(opts);
    EXPECT_EQ(cache.stats().entries, 5u);
    for (unsigned i = 0; i < 5; ++i) {
        core::CheckpointEntry out;
        ASSERT_TRUE(cache.lookup(100 + i, out)) << "key " << i;
        EXPECT_EQ(core::serializeEntry(out), want[i]);
    }
}

TEST(ResultCache, LastDuplicateWins)
{
    core::CacheOptions opts;
    opts.dir = freshDir("orion_cache_dup");
    {
        core::ResultCache cache(opts);
        cache.insert(7, syntheticEntry(1));
        cache.insert(7, syntheticEntry(2));
    }
    core::ResultCache cache(opts);
    core::CheckpointEntry out;
    ASSERT_TRUE(cache.lookup(7, out));
    EXPECT_EQ(core::serializeEntry(out),
              core::serializeEntry(syntheticEntry(2)));
    EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResultCache, TornTailIsQuarantinedNotFatal)
{
    core::CacheOptions opts;
    opts.dir = freshDir("orion_cache_torn");
    {
        core::ResultCache cache(opts);
        for (unsigned i = 0; i < 3; ++i)
            cache.insert(200 + i, syntheticEntry(i));
    }
    const std::vector<std::string> segs = segmentFiles(opts.dir);
    ASSERT_EQ(segs.size(), 1u);
    std::string bytes = slurp(segs[0]);
    ASSERT_GT(bytes.size(), 20u);
    bytes.resize(bytes.size() - 17); // tear mid-checksum
    spit(segs[0], bytes);

    core::ResultCache cache(opts);
    EXPECT_EQ(cache.stats().entries, 2u);
    EXPECT_EQ(cache.stats().quarantined, 1u);
    core::CheckpointEntry out;
    EXPECT_TRUE(cache.lookup(200, out));
    EXPECT_TRUE(cache.lookup(201, out));
    EXPECT_FALSE(cache.lookup(202, out)); // the torn one misses
}

TEST(ResultCache, MidFileCorruptionQuarantinesOnlyThatLine)
{
    core::CacheOptions opts;
    opts.dir = freshDir("orion_cache_flip");
    {
        core::ResultCache cache(opts);
        for (unsigned i = 0; i < 3; ++i)
            cache.insert(300 + i, syntheticEntry(i));
    }
    const std::vector<std::string> segs = segmentFiles(opts.dir);
    ASSERT_EQ(segs.size(), 1u);
    std::string bytes = slurp(segs[0]);
    // Flip a bit in the SECOND entry line (the journal would abort
    // here; the cache must shrug).
    std::size_t nl = bytes.find('\n');            // end of header
    nl = bytes.find('\n', nl + 1);                // end of line 1
    ASSERT_NE(nl, std::string::npos);
    bytes[nl + 10] = static_cast<char>(bytes[nl + 10] ^ 0x04);
    spit(segs[0], bytes);

    core::ResultCache cache(opts);
    EXPECT_EQ(cache.stats().quarantined, 1u);
    core::CheckpointEntry out;
    EXPECT_TRUE(cache.lookup(300, out));
    EXPECT_FALSE(cache.lookup(301, out));
    ASSERT_TRUE(cache.lookup(302, out));
    EXPECT_EQ(core::serializeEntry(out),
              core::serializeEntry(syntheticEntry(2)));
}

TEST(ResultCache, BadHeaderQuarantinesWholeSegment)
{
    core::CacheOptions opts;
    opts.dir = freshDir("orion_cache_badhdr");
    {
        core::ResultCache cache(opts);
        cache.insert(1, syntheticEntry(1));
    }
    const std::vector<std::string> segs = segmentFiles(opts.dir);
    ASSERT_EQ(segs.size(), 1u);
    spit(segs[0], "#not-a-cache v9\n" + slurp(segs[0]));

    core::ResultCache cache(opts);
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_GE(cache.stats().quarantined, 1u);
    core::CheckpointEntry out;
    EXPECT_FALSE(cache.lookup(1, out));
}

TEST(ResultCache, LruEvictionBoundsLiveEntries)
{
    core::CacheOptions opts;
    opts.dir = freshDir("orion_cache_lru");
    opts.maxEntries = 4;
    opts.segmentEntries = 2;
    core::ResultCache cache(opts);

    for (unsigned i = 0; i < 10; ++i)
        cache.insert(500 + i, syntheticEntry(i));

    const core::CacheStats s = cache.stats();
    EXPECT_LE(s.entries, opts.maxEntries + opts.segmentEntries);
    EXPECT_GT(s.evictedSegments, 0u);
    EXPECT_GT(s.evictedEntries, 0u);
    // The newest insert always survives (it sits in the active
    // segment, which is never evicted).
    core::CheckpointEntry out;
    EXPECT_TRUE(cache.lookup(509, out));
    // The oldest segment is gone.
    EXPECT_FALSE(cache.lookup(500, out));
    // On-disk footprint matches the index bound.
    EXPECT_LE(segmentFiles(opts.dir).size(), 4u);
}

TEST(ResultCache, EncodeDecodeRejectsDamage)
{
    const core::CheckpointEntry e = syntheticEntry(3);
    const std::string line = core::ResultCache::encodeLine(9, e);
    std::uint64_t key = 0;
    core::CheckpointEntry out;
    ASSERT_TRUE(core::ResultCache::decodeLine(line, key, out));
    EXPECT_EQ(key, 9u);
    EXPECT_EQ(core::serializeEntry(out), core::serializeEntry(e));

    // Any single-character damage must be caught by a checksum.
    std::string mut = line;
    mut[5] ^= 0x01;
    EXPECT_FALSE(core::ResultCache::decodeLine(mut, key, out));
    EXPECT_FALSE(core::ResultCache::decodeLine("", key, out));
    EXPECT_FALSE(core::ResultCache::decodeLine("K|fp=zz", key, out));
    EXPECT_FALSE(core::ResultCache::decodeLine(
        line.substr(0, line.size() - 1), key, out));
}

TEST(ResultCache, CachedPointMatchesRecomputedBytes)
{
    // The end-to-end property orion_served relies on: a Report that
    // went through insert() + lookup() serializes to the same bytes
    // as rerunning the simulation from scratch.
    SimConfig s;
    s.samplePackets = 300;
    s.maxCycles = 60000;
    TrafficConfig t;
    const NetworkConfig n = NetworkConfig::vc16();
    const std::vector<double> rates = {0.04};

    const auto first = Sweep::overRates(n, t, s, rates);
    ASSERT_EQ(first.size(), 1u);
    core::CheckpointEntry e;
    e.report = first[0].report;

    core::CacheOptions opts;
    opts.dir = freshDir("orion_cache_e2e");
    const std::uint64_t key =
        core::sweepFingerprint(n, t, s, rates, 1);
    {
        core::ResultCache cache(opts);
        cache.insert(key, e);
    }

    core::ResultCache cache(opts); // reopen: disk round trip included
    core::CheckpointEntry cached;
    ASSERT_TRUE(cache.lookup(key, cached));

    const auto second = Sweep::overRates(n, t, s, rates);
    core::CheckpointEntry recomputed;
    recomputed.report = second[0].report;
    EXPECT_EQ(core::serializeEntry(cached),
              core::serializeEntry(recomputed));
}

} // namespace
