/**
 * @file
 * Tests for configuration presets and validation: every paper preset
 * matches its Section 4.2/4.4 description, and malformed
 * configurations fail fast with descriptive exceptions instead of
 * corrupting a run.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/config.hh"
#include "core/simulation.hh"

namespace {

using namespace orion;

TEST(Presets, Wh64MatchesPaper)
{
    const NetworkConfig c = NetworkConfig::wh64();
    EXPECT_EQ(c.net.routerKind, net::RouterKind::Wormhole);
    EXPECT_EQ(c.net.vcs, 1u);
    EXPECT_EQ(c.net.bufferDepth, 64u);
    EXPECT_EQ(c.net.flitBits, 256u);
    EXPECT_EQ(c.net.packetLength, 5u);
    EXPECT_TRUE(c.net.wrap);
    EXPECT_EQ(c.linkType, LinkType::OnChip);
    EXPECT_DOUBLE_EQ(c.tech.freqHz, 2.0e9);
    EXPECT_NO_THROW(c.validate());
}

TEST(Presets, VcFamilyMatchesPaper)
{
    const NetworkConfig vc16 = NetworkConfig::vc16();
    EXPECT_EQ(vc16.net.vcs, 2u);
    EXPECT_EQ(vc16.net.bufferDepth, 8u);

    const NetworkConfig vc64 = NetworkConfig::vc64();
    EXPECT_EQ(vc64.net.vcs, 8u);
    EXPECT_EQ(vc64.net.bufferDepth, 8u);

    const NetworkConfig vc128 = NetworkConfig::vc128();
    EXPECT_EQ(vc128.net.vcs, 8u);
    EXPECT_EQ(vc128.net.bufferDepth, 16u);

    for (const auto& c : {vc16, vc64, vc128}) {
        EXPECT_EQ(c.net.routerKind, net::RouterKind::VirtualChannel);
        EXPECT_EQ(c.net.flitBits, 256u);
        EXPECT_NO_THROW(c.validate());
    }
}

TEST(Presets, ChipToChipPairMatchesPaper)
{
    const NetworkConfig xb = NetworkConfig::xb();
    EXPECT_EQ(xb.net.vcs, 16u);
    EXPECT_EQ(xb.net.bufferDepth, 268u);
    EXPECT_EQ(xb.net.flitBits, 32u);
    EXPECT_EQ(xb.linkType, LinkType::ChipToChip);
    EXPECT_DOUBLE_EQ(xb.c2cLinkPowerWatts, 3.0);
    EXPECT_EQ(xb.bufferOrg, BufferOrganization::PerVc);

    const NetworkConfig cb = NetworkConfig::cb();
    EXPECT_EQ(cb.net.routerKind, net::RouterKind::CentralBuffer);
    EXPECT_EQ(cb.net.centralBuffer.capacityFlits, 4u * 2560u);
    EXPECT_EQ(cb.net.centralBuffer.writePorts, 2u);
    EXPECT_EQ(cb.net.centralBuffer.readPorts, 2u);
    EXPECT_DOUBLE_EQ(cb.tech.freqHz, 1.0e9);

    EXPECT_NO_THROW(xb.validate());
    EXPECT_NO_THROW(cb.validate());
}

TEST(Presets, BuildModelsMatchesRouterShape)
{
    const auto vc = NetworkConfig::vc64().buildModels();
    ASSERT_TRUE(vc.buffer && vc.crossbar && vc.switchArbiter &&
                vc.vcArbiter && vc.onChipLink);
    EXPECT_FALSE(vc.centralBuffer || vc.chipToChipLink);
    EXPECT_EQ(vc.switchArbiter->params().requests, 4u); // 4:1
    EXPECT_EQ(vc.vcArbiter->params().requests, 32u);    // 4 x 8

    const auto cb = NetworkConfig::cb().buildModels();
    ASSERT_TRUE(cb.buffer && cb.centralBuffer && cb.chipToChipLink);
    EXPECT_FALSE(cb.crossbar || cb.vcArbiter || cb.onChipLink);
    EXPECT_EQ(cb.centralBuffer->params().rowsPerBank, 2560u);
}

TEST(Validation, RejectsBadTopology)
{
    NetworkConfig c = NetworkConfig::vc16();
    c.net.dims = {};
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c.net.dims = {4, 1};
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Validation, RejectsVcsOnNonVcRouters)
{
    NetworkConfig c = NetworkConfig::wh64();
    c.net.vcs = 2;
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Validation, RejectsDatelineWithOneVc)
{
    NetworkConfig c = NetworkConfig::wh64();
    c.net.deadlock = router::DeadlockMode::Dateline;
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Validation, RejectsShallowBubbleBuffers)
{
    NetworkConfig c = NetworkConfig::wh64();
    c.net.bufferDepth = 7; // < 2 x packetLength
    EXPECT_THROW(c.validate(), std::invalid_argument);

    NetworkConfig v = NetworkConfig::vc64();
    v.net.bufferDepth = 4; // < packetLength for slot bubble
    EXPECT_THROW(v.validate(), std::invalid_argument);
}

TEST(Validation, RejectsBadCentralBuffer)
{
    NetworkConfig c = NetworkConfig::cb();
    c.net.centralBuffer.capacityFlits = 3; // < packet, not 4-bankable
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = NetworkConfig::cb();
    c.net.centralBuffer.writePorts = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Validation, RejectsBadDimOrder)
{
    NetworkConfig c = NetworkConfig::vc16();
    c.net.dimOrder = {0};
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c.net.dimOrder = {0, 0};
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c.net.dimOrder = {1, 0};
    EXPECT_NO_THROW(c.validate());
}

TEST(Validation, RejectsBadTraffic)
{
    const NetworkConfig c = NetworkConfig::vc16();
    TrafficConfig t;
    t.injectionRate = 1.5;
    EXPECT_THROW(validateTraffic(c, t), std::invalid_argument);

    t = {};
    t.pattern = net::TrafficPattern::Broadcast;
    t.broadcastSource = 99;
    EXPECT_THROW(validateTraffic(c, t), std::invalid_argument);

    t = {};
    t.pattern = net::TrafficPattern::Hotspot;
    t.hotspotNode = -3;
    EXPECT_THROW(validateTraffic(c, t), std::invalid_argument);

    t = {};
    t.pattern = net::TrafficPattern::Trace; // no trace supplied
    EXPECT_THROW(validateTraffic(c, t), std::invalid_argument);
}

TEST(Validation, SimulationConstructorValidates)
{
    NetworkConfig c = NetworkConfig::vc16();
    c.net.vcs = 0;
    TrafficConfig t;
    SimConfig s;
    EXPECT_THROW(Simulation(c, t, s), std::invalid_argument);
}

TEST(Report, LatencyQuantilesOrdered)
{
    TrafficConfig t;
    t.injectionRate = 0.08;
    SimConfig s;
    s.samplePackets = 1500;
    s.maxCycles = 100000;
    Simulation sim(NetworkConfig::vc16(), t, s);
    const Report r = sim.run();
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.p50LatencyCycles, 0.0);
    EXPECT_LE(r.p50LatencyCycles, r.p95LatencyCycles);
    EXPECT_LE(r.p95LatencyCycles, r.p99LatencyCycles);
    EXPECT_LE(r.p99LatencyCycles, r.maxLatencyCycles + 1.0);
    // The mean sits between the median and the tail for a right-
    // skewed queueing distribution.
    EXPECT_GT(r.maxLatencyCycles, r.avgLatencyCycles);
}

} // namespace
