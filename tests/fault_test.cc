/**
 * @file
 * Tests for deterministic fault injection and link-level recovery:
 * config validation, the zero-fault fast path, schedule determinism
 * (including across sweep job counts), end-to-end retransmission
 * delivery under the network audits, retry-limit exhaustion, and port
 * stall schedules.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/check.hh"
#include "core/config.hh"
#include "core/simulation.hh"
#include "core/sweep.hh"
#include "net/fault.hh"

namespace {

using namespace orion;

TrafficConfig
uniform(double rate)
{
    TrafficConfig t;
    t.injectionRate = rate;
    return t;
}

SimConfig
shortRun()
{
    SimConfig s;
    s.warmupCycles = 500;
    s.samplePackets = 1500;
    s.maxCycles = 100000;
    return s;
}

// --- configuration ----------------------------------------------------

TEST(FaultConfig, DefaultsAreDisabled)
{
    FaultConfig f;
    EXPECT_FALSE(f.enabled());
    EXPECT_NO_THROW(f.validate());
}

TEST(FaultConfig, ValidateRejectsBadValues)
{
    {
        FaultConfig f;
        f.linkBitErrorRate = 1.5;
        EXPECT_THROW(f.validate(), std::invalid_argument);
    }
    {
        FaultConfig f;
        f.linkBitErrorRate = -0.1;
        EXPECT_THROW(f.validate(), std::invalid_argument);
    }
    {
        FaultConfig f;
        f.outages.push_back({.start = 100, .end = 100});
        EXPECT_THROW(f.validate(), std::invalid_argument);
    }
    {
        FaultConfig f;
        f.stalls.push_back(
            {.node = -2, .port = 0, .start = 0, .end = 10});
        EXPECT_THROW(f.validate(), std::invalid_argument);
    }
    {
        FaultConfig f;
        f.retryBackoffCycles = 0;
        f.linkBitErrorRate = 1e-6;
        EXPECT_THROW(f.validate(), std::invalid_argument);
    }
    {
        FaultConfig f;
        f.retryLimit = 33;
        EXPECT_THROW(f.validate(), std::invalid_argument);
    }
}

TEST(FaultConfig, ScheduleAgainstMissingTopologyIsRejected)
{
    FaultConfig f;
    f.stalls.push_back({.node = 99, .port = 0, .start = 0, .end = 10});
    net::FaultInjector inj(f, 1, 64);
    for (int i = 0; i < 4; ++i)
        inj.registerLink();
    EXPECT_THROW(inj.finalizeTopology(16, 5), std::invalid_argument);

    FaultConfig g;
    g.outages.push_back({.start = 0, .end = 10, .link = 77});
    net::FaultInjector inj2(g, 1, 64);
    for (int i = 0; i < 4; ++i)
        inj2.registerLink();
    EXPECT_THROW(inj2.finalizeTopology(16, 5), std::invalid_argument);
}

// --- zero-fault fast path ---------------------------------------------

TEST(Fault, ZeroFaultConfigIsInert)
{
    Simulation sim(NetworkConfig::vc16(), uniform(0.05), shortRun());
    EXPECT_EQ(sim.faultInjector(), nullptr);
    const Report r = sim.run();
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.flitsCorrupted, 0u);
    EXPECT_EQ(r.flitsDiscarded, 0u);
    EXPECT_EQ(r.packetsRetransmitted, 0u);
    EXPECT_EQ(r.packetsLost, 0u);
    EXPECT_EQ(r.faultLogHash, 0u);
}

// --- determinism ------------------------------------------------------

SimConfig
faultyRun()
{
    SimConfig s = shortRun();
    s.fault.linkBitErrorRate = 2e-6;
    s.fault.outages.push_back({.start = 1200, .end = 1500, .link = -1});
    return s;
}

TEST(Fault, SameSeedGivesIdenticalFaultLog)
{
    const SimConfig s = faultyRun();
    Simulation a(NetworkConfig::vc16(), uniform(0.05), s);
    Simulation b(NetworkConfig::vc16(), uniform(0.05), s);
    const Report ra = a.run();
    const Report rb = b.run();

    ASSERT_NE(a.faultInjector(), nullptr);
    EXPECT_GT(a.faultInjector()->eventCount(), 0u);
    EXPECT_EQ(a.faultInjector()->eventCount(),
              b.faultInjector()->eventCount());
    EXPECT_EQ(ra.faultLogHash, rb.faultLogHash);
    EXPECT_EQ(a.faultInjector()->log(), b.faultInjector()->log());
    EXPECT_EQ(ra.avgLatencyCycles, rb.avgLatencyCycles);
    EXPECT_EQ(ra.packetsRetransmitted, rb.packetsRetransmitted);
}

TEST(Fault, ExplicitFaultSeedDecouplesFromTrafficSeed)
{
    SimConfig a = faultyRun();
    a.fault.faultSeed = 42;
    SimConfig b = faultyRun();
    b.fault.faultSeed = 43;
    Simulation ra(NetworkConfig::vc16(), uniform(0.05), a);
    Simulation rb(NetworkConfig::vc16(), uniform(0.05), b);
    const Report x = ra.run();
    const Report y = rb.run();
    EXPECT_NE(x.faultLogHash, y.faultLogHash);
}

TEST(Fault, SweepFaultScheduleIdenticalAcrossJobCounts)
{
    const SimConfig s = faultyRun();
    TrafficConfig t;
    const std::vector<double> rates = {0.03, 0.05, 0.07};
    const NetworkConfig net = NetworkConfig::vc16();

    const auto serial = Sweep::overRates(net, t, s, rates, SweepOptions::withJobs(1));
    const auto parallel =
        Sweep::overRates(net, t, s, rates, SweepOptions::withJobs(3));

    ASSERT_EQ(serial.size(), parallel.size());
    bool any_faults = false;
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        const Report& a = serial[i].report;
        const Report& b = parallel[i].report;
        EXPECT_EQ(a.faultLogHash, b.faultLogHash);
        EXPECT_EQ(a.flitsCorrupted, b.flitsCorrupted);
        EXPECT_EQ(a.packetsRetransmitted, b.packetsRetransmitted);
        EXPECT_EQ(a.avgLatencyCycles, b.avgLatencyCycles);
        EXPECT_EQ(a.networkPowerWatts, b.networkPowerWatts);
        any_faults = any_faults || a.flitsCorrupted > 0;
    }
    EXPECT_TRUE(any_faults) << "test injected no faults at all";
}

// --- recovery under audit ---------------------------------------------

/** Paranoid checks for the duration of one test. */
class FaultRecoveryTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        saved_ = core::checkLevel();
        core::setCheckLevel(core::CheckLevel::Paranoid);
    }
    void TearDown() override { core::setCheckLevel(saved_); }

  private:
    core::CheckLevel saved_ = core::CheckLevel::Cheap;
};

void
expectRecovers(const NetworkConfig& cfg)
{
    SimConfig s = faultyRun();
    s.auditCycles = 256;
    Simulation sim(cfg, uniform(0.05), s);
    const Report r = sim.run();
    ASSERT_TRUE(r.completed) << "stop: " << stopReasonName(r.stopReason)
                             << " " << r.checkFailureDiagnostic;
    // Every sample packet was delivered despite corruption: faults
    // occurred, recovery retransmitted, nothing was abandoned.
    EXPECT_EQ(r.sampleEjected, r.sampleInjected);
    EXPECT_GT(r.flitsCorrupted + r.flitsOutageDropped, 0u);
    EXPECT_GT(r.flitsDiscarded, 0u);
    EXPECT_GT(r.packetsRetransmitted, 0u);
    EXPECT_EQ(r.packetsLost, 0u);
    // Ledgers balance at drain with faults in play.
    EXPECT_NO_THROW(sim.auditor().auditAll());
}

TEST_F(FaultRecoveryTest, VcNetworkDeliversAllPacketsUnderFaults)
{
    expectRecovers(NetworkConfig::vc16());
}

TEST_F(FaultRecoveryTest, WormholeNetworkDeliversAllPacketsUnderFaults)
{
    expectRecovers(NetworkConfig::wh64());
}

TEST_F(FaultRecoveryTest,
       CentralBufferNetworkDeliversAllPacketsUnderFaults)
{
    expectRecovers(NetworkConfig::cb());
}

TEST_F(FaultRecoveryTest, RetryLimitExhaustionCountsPacketsLost)
{
    // One link is dead for the whole run and retries are exhausted
    // immediately: packets routed across it are declared lost, the
    // run still terminates, and the ledgers still balance (losses are
    // counted, not leaked).
    SimConfig s = shortRun();
    s.samplePackets = 600;
    s.fault.outages.push_back(
        {.start = 0, .end = 1000000, .link = 0});
    s.fault.retryLimit = 0;
    s.auditCycles = 256;
    Simulation sim(NetworkConfig::vc16(), uniform(0.05), s);
    const Report r = sim.run();
    ASSERT_TRUE(r.completed) << "stop: " << stopReasonName(r.stopReason)
                             << " " << r.checkFailureDiagnostic;
    EXPECT_GT(r.packetsLost, 0u);
    EXPECT_EQ(r.packetsRetransmitted, 0u);
    EXPECT_NO_THROW(sim.auditor().auditAll());
}

// --- port stalls ------------------------------------------------------

TEST(Fault, PortStallScheduleIsHonored)
{
    FaultConfig f;
    f.stalls.push_back({.node = 3, .port = 2, .start = 100, .end = 200});
    net::FaultInjector inj(f, 1, 64);
    inj.finalizeTopology(16, 5);
    EXPECT_FALSE(inj.portStalled(3, 2, 99));
    EXPECT_TRUE(inj.portStalled(3, 2, 100));
    EXPECT_TRUE(inj.portStalled(3, 2, 199));
    EXPECT_FALSE(inj.portStalled(3, 2, 200));
    EXPECT_FALSE(inj.portStalled(3, 3, 150));
    EXPECT_FALSE(inj.portStalled(4, 2, 150));
}

TEST_F(FaultRecoveryTest, StalledPortDelaysButDeliversTraffic)
{
    SimConfig s = shortRun();
    s.auditCycles = 256;
    SimConfig stalled = s;
    for (unsigned p = 0; p < 5; ++p) {
        stalled.fault.stalls.push_back(
            {.node = 5, .port = p, .start = 600, .end = 900});
    }

    Simulation base(NetworkConfig::vc16(), uniform(0.05), s);
    const Report rb = base.run();
    Simulation sim(NetworkConfig::vc16(), uniform(0.05), stalled);
    const Report r = sim.run();

    ASSERT_TRUE(r.completed) << "stop: " << stopReasonName(r.stopReason)
                             << " " << r.checkFailureDiagnostic;
    EXPECT_EQ(r.sampleEjected, r.sampleInjected);
    // Stalling every output of a router mid-measurement must cost
    // latency somewhere.
    EXPECT_GT(r.avgLatencyCycles, rb.avgLatencyCycles);
    EXPECT_NO_THROW(sim.auditor().auditAll());
}

} // namespace
