/**
 * @file
 * Tests for the virtual-channel router pipeline: 3-stage VA/SA/ST
 * timing, VC allocation semantics, per-packet output-VC holding,
 * wormhole non-interleaving, dateline class restriction, and the
 * bubble rule's space requirements.
 */

#include <gtest/gtest.h>

#include <vector>

#include "router_test_util.hh"

namespace {

using namespace orion;
using namespace orion::router;
using namespace orion::test;
using sim::Event;
using sim::EventType;

RouterParams
vcParams(unsigned vcs, unsigned depth, DeadlockMode dl,
         unsigned pkt_len = 5)
{
    RouterParams p;
    p.ports = 5;
    p.vcs = vcs;
    p.bufferDepth = depth;
    p.flitBits = 64;
    p.packetLength = pkt_len;
    p.deadlock = dl;
    return p;
}

SingleRouterHarness
makeVcHarness(const RouterParams& p)
{
    return SingleRouterHarness(
        [&](sim::Simulator& s) {
            return std::make_unique<CrossbarRouter>(
                "vc", 0, p, s.bus(), /*va_enabled=*/true);
        },
        p.vcs, p.bufferDepth);
}

constexpr unsigned kIn = 1;
constexpr unsigned kOut = 2;

std::vector<RouteHop>
oneHopRoute(unsigned out = kOut)
{
    return {RouteHop{static_cast<std::uint8_t>(out), 0, false},
            RouteHop{4, 0, false}};
}

TEST(VcRouter, ThreeStagePipelineTiming)
{
    const RouterParams p = vcParams(2, 8, DeadlockMode::None, 1);
    SingleRouterHarness h = makeVcHarness(p);

    std::vector<Event> events;
    for (const auto t :
         {EventType::BufferWrite, EventType::VcAllocation,
          EventType::Arbitration, EventType::CrossbarTraversal}) {
        h.sim.bus().subscribe(
            t, [&](const Event& e) { events.push_back(e); });
    }

    sim::Rng rng(1);
    auto flits = makePacket(1, 0, 1, 1, p.flitBits, oneHopRoute(), rng);
    h.inject(kIn, std::move(flits[0]));
    h.sim.run(6);

    // BW at 1, VA at 2, SA at 3, ST at 4: the paper's 3-stage
    // virtual-channel pipeline (VA, SA, ST) after the buffer write.
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].type, EventType::BufferWrite);
    EXPECT_EQ(events[0].cycle, 1u);
    EXPECT_EQ(events[1].type, EventType::VcAllocation);
    EXPECT_EQ(events[1].cycle, 2u);
    EXPECT_EQ(events[2].type, EventType::Arbitration);
    EXPECT_EQ(events[2].cycle, 3u);
    EXPECT_EQ(events[3].type, EventType::CrossbarTraversal);
    EXPECT_EQ(events[3].cycle, 4u);
}

TEST(VcRouter, PacketFlitsStayOnOneOutputVc)
{
    const RouterParams p = vcParams(4, 8, DeadlockMode::None);
    SingleRouterHarness h = makeVcHarness(p);

    sim::Rng rng(2);
    auto flits = makePacket(1, 0, 1, 5, p.flitBits, oneHopRoute(), rng);
    std::vector<Flit> out;
    std::size_t next = 0;
    for (int c = 0; c < 30 && out.size() < 5; ++c) {
        if (next < flits.size()) {
            h.inject(kIn, flits[next]);
            ++next;
        }
        h.sim.run(1);
        h.readCreditReturn(kIn);
        if (auto f = h.readOutput(kOut))
            out.push_back(*f);
    }
    ASSERT_EQ(out.size(), 5u);
    for (unsigned s = 0; s < 5; ++s) {
        EXPECT_EQ(out[s].seq, s);           // in order
        EXPECT_EQ(out[s].vc, out[0].vc);    // same downstream VC
    }
    EXPECT_TRUE(out[0].head);
    EXPECT_TRUE(out[4].tail);
}

TEST(VcRouter, OutputVcReleasedAfterTail)
{
    const RouterParams p = vcParams(1, 8, DeadlockMode::None, 2);
    SingleRouterHarness h = makeVcHarness(p);
    auto& router = dynamic_cast<CrossbarRouter&>(h.router());

    sim::Rng rng(3);
    auto flits = makePacket(1, 0, 1, 2, p.flitBits, oneHopRoute(), rng);
    h.inject(kIn, flits[0]);
    h.sim.run(1);
    h.inject(kIn, flits[1]);

    bool was_busy = false;
    for (int c = 0; c < 12; ++c) {
        h.sim.run(1);
        h.readCreditReturn(kIn);
        h.readOutput(kOut);
        was_busy = was_busy || router.outVcBusy(kOut, 0);
    }
    EXPECT_TRUE(was_busy);
    EXPECT_FALSE(router.outVcBusy(kOut, 0)); // released by the tail
}

TEST(VcRouter, TwoPacketsShareOutputPortViaDifferentVcs)
{
    // Two packets from different inputs to the same output: with 2
    // VCs both get allocated and their flits interleave on the link,
    // each on its own VC.
    const RouterParams p = vcParams(2, 8, DeadlockMode::None);
    SingleRouterHarness h = makeVcHarness(p);

    sim::Rng rng(4);
    auto pkt_a = makePacket(1, 0, 1, 5, p.flitBits, oneHopRoute(), rng);
    auto pkt_b = makePacket(2, 0, 1, 5, p.flitBits, oneHopRoute(), rng);

    std::vector<Flit> out;
    std::size_t next = 0;
    for (int c = 0; c < 40 && out.size() < 10; ++c) {
        if (next < 5) {
            h.inject(1, pkt_a[next]);
            h.inject(3, pkt_b[next]);
            ++next;
        }
        h.sim.run(1);
        h.readCreditReturn(1);
        h.readCreditReturn(3);
        if (auto f = h.readOutput(kOut))
            out.push_back(*f);
    }
    ASSERT_EQ(out.size(), 10u);

    // Group by assigned VC: each VC must carry one whole packet in
    // order.
    for (unsigned vc = 0; vc < 2; ++vc) {
        unsigned expect_seq = 0;
        std::uint64_t pkt_id = 0;
        bool first = true;
        for (const auto& f : out) {
            if (f.vc != vc)
                continue;
            if (first) {
                pkt_id = f.packet->id;
                first = false;
            }
            EXPECT_EQ(f.packet->id, pkt_id);
            EXPECT_EQ(f.seq, expect_seq++);
        }
        EXPECT_EQ(expect_seq, 5u);
    }
}

TEST(WormholeRouter, PacketsNeverInterleaveOnOutput)
{
    // Wormhole (1 VC): a packet holds the output port head-to-tail.
    RouterParams p = vcParams(1, 8, DeadlockMode::None);
    SingleRouterHarness h(
        [&](sim::Simulator& s) {
            return std::make_unique<WormholeRouter>("wh", 0, p, s.bus());
        },
        1, 8);

    sim::Rng rng(5);
    auto pkt_a = makePacket(1, 0, 1, 5, p.flitBits, oneHopRoute(), rng);
    auto pkt_b = makePacket(2, 0, 1, 5, p.flitBits, oneHopRoute(), rng);

    std::vector<Flit> out;
    std::size_t next = 0;
    for (int c = 0; c < 40 && out.size() < 10; ++c) {
        if (next < 5) {
            h.inject(1, pkt_a[next]);
            h.inject(3, pkt_b[next]);
            ++next;
        }
        h.sim.run(1);
        h.readCreditReturn(1);
        h.readCreditReturn(3);
        if (auto f = h.readOutput(kOut)) {
            out.push_back(*f);
            h.returnCredit(kOut, Credit{0}); // downstream consumes
        }
    }
    ASSERT_EQ(out.size(), 10u);
    // First five flits all belong to one packet, next five to the
    // other.
    const std::uint64_t first_id = out[0].packet->id;
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(out[static_cast<unsigned>(i)].packet->id, first_id);
    const std::uint64_t second_id = out[5].packet->id;
    EXPECT_NE(second_id, first_id);
    for (int i = 5; i < 10; ++i)
        EXPECT_EQ(out[static_cast<unsigned>(i)].packet->id, second_id);
}

TEST(VcRouter, DatelineRestrictsVcClass)
{
    // With dateline mode and 4 VCs, class-1 packets may only use VCs
    // {2, 3} downstream.
    const RouterParams p = vcParams(4, 8, DeadlockMode::Dateline, 1);
    SingleRouterHarness h = makeVcHarness(p);

    sim::Rng rng(6);
    std::vector<RouteHop> route{RouteHop{kOut, 1, true},
                                RouteHop{4, 0, false}};
    auto flits = makePacket(1, 0, 1, 1, p.flitBits, route, rng);
    h.inject(kIn, std::move(flits[0]));

    std::optional<Flit> got;
    for (int c = 0; c < 10 && !got; ++c) {
        h.sim.run(1);
        h.readCreditReturn(kIn);
        got = h.readOutput(kOut);
    }
    ASSERT_TRUE(got.has_value());
    EXPECT_GE(got->vc, 2); // upper half = class 1
}

TEST(WormholeRouter, BubbleRuleHoldsHeadWithoutSpace)
{
    // Bubble mode, packet length 2, downstream depth 8: entering a new
    // ring requires 2 x 2 = 4 free slots. Pre-consume 5 downstream
    // credits so only 3 remain: the head must stall; after returning
    // credits it proceeds.
    RouterParams p = vcParams(1, 8, DeadlockMode::Bubble, 2);
    SingleRouterHarness h(
        [&](sim::Simulator& s) {
            return std::make_unique<WormholeRouter>("wh", 0, p, s.bus());
        },
        1, 8);

    // Occupy downstream: send a long packet through first. Simpler:
    // directly consume credits by injecting an earlier 5-flit packet
    // is overkill — instead reach in via outputCredits after
    // arbitration. Here we emulate scarcity with a second packet that
    // fills downstream and never drains (no credits returned).
    sim::Rng rng(7);
    std::vector<RouteHop> filler_route{RouteHop{kOut, 0, false},
                                       RouteHop{4, 0, false}};
    // Filler: 5 single-flit packets (continuing in ring, need >= 2
    // slots each) occupy 5 of 8 downstream slots.
    for (int i = 0; i < 5; ++i) {
        auto f = makePacket(static_cast<std::uint64_t>(10 + i), 0, 1, 1,
                            p.flitBits, filler_route, rng);
        h.inject(1, f[0]);
        h.sim.run(2);
        h.readCreditReturn(1);
        h.readOutput(kOut); // drain the link but return no credits
    }
    // Let all five fillers drain through the pipeline.
    for (int c = 0; c < 10; ++c) {
        h.sim.run(1);
        h.readCreditReturn(1);
        h.readOutput(kOut);
    }
    EXPECT_EQ(h.router().outputCredits(kOut, 0), 3u);

    // Now a ring-entering head (newRing = true) needs 4 free: stalls.
    std::vector<RouteHop> entering{RouteHop{kOut, 0, true},
                                   RouteHop{4, 0, false}};
    auto pkt = makePacket(1, 0, 1, 2, p.flitBits, entering, rng);
    h.inject(1, pkt[0]);
    h.sim.run(1);
    h.inject(1, pkt[1]);
    for (int c = 0; c < 10; ++c) {
        h.sim.run(1);
        h.readCreditReturn(1);
        EXPECT_FALSE(h.readOutput(kOut).has_value()) << "head must stall";
    }

    // Return one credit: 4 free now, head may proceed.
    h.returnCredit(kOut, Credit{0});
    int forwarded = 0;
    for (int c = 0; c < 12; ++c) {
        h.sim.run(1);
        h.readCreditReturn(1);
        if (h.readOutput(kOut))
            ++forwarded;
    }
    EXPECT_EQ(forwarded, 2); // head + tail
}

TEST(VcRouter, HeadOfLineBlockingWithSingleVc)
{
    // Classic HoL: packet A (blocked on credits) trapped behind it is
    // packet B to a free output — with 1 VC, B cannot pass A.
    RouterParams p = vcParams(1, 16, DeadlockMode::None, 2);
    SingleRouterHarness h = makeVcHarness(p);

    sim::Rng rng(8);
    const auto step = [&] {
        h.sim.run(1);
        h.readCreditReturn(1);
        h.readOutput(kOut);
    };

    // Fill output kOut's downstream buffer (depth 16) with 8 2-flit
    // packets, so the 9th stalls.
    for (int i = 0; i < 8; ++i) {
        auto f =
            makePacket(static_cast<std::uint64_t>(i), 0, 1, 2,
                       p.flitBits, oneHopRoute(kOut), rng);
        h.inject(1, f[0]);
        step();
        h.inject(1, f[1]);
        step();
        step();
    }
    // Drain anything in flight, never returning downstream credits.
    for (int c = 0; c < 20; ++c)
        step();

    // Packet A to kOut (stalls on credits), then packet B to output 0.
    auto a = makePacket(100, 0, 1, 2, p.flitBits, oneHopRoute(kOut),
                        rng);
    auto b = makePacket(101, 0, 1, 2, p.flitBits, oneHopRoute(0), rng);
    h.inject(1, a[0]);
    step();
    h.inject(1, a[1]);
    step();
    h.inject(1, b[0]);
    step();
    h.inject(1, b[1]);

    for (int c = 0; c < 15; ++c) {
        step();
        EXPECT_FALSE(h.readOutput(0).has_value())
            << "B escaped past a blocked head with only 1 VC";
    }
}

} // namespace
