file(REMOVE_RECURSE
  "CMakeFiles/example_standalone_power.dir/standalone_power.cc.o"
  "CMakeFiles/example_standalone_power.dir/standalone_power.cc.o.d"
  "example_standalone_power"
  "example_standalone_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_standalone_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
