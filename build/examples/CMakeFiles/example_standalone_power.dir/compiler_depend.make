# Empty compiler generated dependencies file for example_standalone_power.
# This may be replaced when dependencies are built.
