# Empty dependencies file for example_traffic_patterns.
# This may be replaced when dependencies are built.
