file(REMOVE_RECURSE
  "CMakeFiles/example_traffic_patterns.dir/traffic_patterns.cc.o"
  "CMakeFiles/example_traffic_patterns.dir/traffic_patterns.cc.o.d"
  "example_traffic_patterns"
  "example_traffic_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_traffic_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
