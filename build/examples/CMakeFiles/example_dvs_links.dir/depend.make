# Empty dependencies file for example_dvs_links.
# This may be replaced when dependencies are built.
