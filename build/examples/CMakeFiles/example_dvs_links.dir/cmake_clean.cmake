file(REMOVE_RECURSE
  "CMakeFiles/example_dvs_links.dir/dvs_links.cc.o"
  "CMakeFiles/example_dvs_links.dir/dvs_links.cc.o.d"
  "example_dvs_links"
  "example_dvs_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dvs_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
