# Empty dependencies file for orion.
# This may be replaced when dependencies are built.
