
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cli.cc" "src/CMakeFiles/orion.dir/core/cli.cc.o" "gcc" "src/CMakeFiles/orion.dir/core/cli.cc.o.d"
  "/root/repo/src/core/config.cc" "src/CMakeFiles/orion.dir/core/config.cc.o" "gcc" "src/CMakeFiles/orion.dir/core/config.cc.o.d"
  "/root/repo/src/core/model_cli.cc" "src/CMakeFiles/orion.dir/core/model_cli.cc.o" "gcc" "src/CMakeFiles/orion.dir/core/model_cli.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/orion.dir/core/report.cc.o" "gcc" "src/CMakeFiles/orion.dir/core/report.cc.o.d"
  "/root/repo/src/core/simulation.cc" "src/CMakeFiles/orion.dir/core/simulation.cc.o" "gcc" "src/CMakeFiles/orion.dir/core/simulation.cc.o.d"
  "/root/repo/src/core/sweep.cc" "src/CMakeFiles/orion.dir/core/sweep.cc.o" "gcc" "src/CMakeFiles/orion.dir/core/sweep.cc.o.d"
  "/root/repo/src/net/dvs_monitor.cc" "src/CMakeFiles/orion.dir/net/dvs_monitor.cc.o" "gcc" "src/CMakeFiles/orion.dir/net/dvs_monitor.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/orion.dir/net/network.cc.o" "gcc" "src/CMakeFiles/orion.dir/net/network.cc.o.d"
  "/root/repo/src/net/node.cc" "src/CMakeFiles/orion.dir/net/node.cc.o" "gcc" "src/CMakeFiles/orion.dir/net/node.cc.o.d"
  "/root/repo/src/net/power_monitor.cc" "src/CMakeFiles/orion.dir/net/power_monitor.cc.o" "gcc" "src/CMakeFiles/orion.dir/net/power_monitor.cc.o.d"
  "/root/repo/src/net/routing.cc" "src/CMakeFiles/orion.dir/net/routing.cc.o" "gcc" "src/CMakeFiles/orion.dir/net/routing.cc.o.d"
  "/root/repo/src/net/topology.cc" "src/CMakeFiles/orion.dir/net/topology.cc.o" "gcc" "src/CMakeFiles/orion.dir/net/topology.cc.o.d"
  "/root/repo/src/net/trace.cc" "src/CMakeFiles/orion.dir/net/trace.cc.o" "gcc" "src/CMakeFiles/orion.dir/net/trace.cc.o.d"
  "/root/repo/src/net/traffic.cc" "src/CMakeFiles/orion.dir/net/traffic.cc.o" "gcc" "src/CMakeFiles/orion.dir/net/traffic.cc.o.d"
  "/root/repo/src/power/activity.cc" "src/CMakeFiles/orion.dir/power/activity.cc.o" "gcc" "src/CMakeFiles/orion.dir/power/activity.cc.o.d"
  "/root/repo/src/power/arbiter_model.cc" "src/CMakeFiles/orion.dir/power/arbiter_model.cc.o" "gcc" "src/CMakeFiles/orion.dir/power/arbiter_model.cc.o.d"
  "/root/repo/src/power/buffer_model.cc" "src/CMakeFiles/orion.dir/power/buffer_model.cc.o" "gcc" "src/CMakeFiles/orion.dir/power/buffer_model.cc.o.d"
  "/root/repo/src/power/central_buffer_model.cc" "src/CMakeFiles/orion.dir/power/central_buffer_model.cc.o" "gcc" "src/CMakeFiles/orion.dir/power/central_buffer_model.cc.o.d"
  "/root/repo/src/power/crossbar_model.cc" "src/CMakeFiles/orion.dir/power/crossbar_model.cc.o" "gcc" "src/CMakeFiles/orion.dir/power/crossbar_model.cc.o.d"
  "/root/repo/src/power/dvs_link_model.cc" "src/CMakeFiles/orion.dir/power/dvs_link_model.cc.o" "gcc" "src/CMakeFiles/orion.dir/power/dvs_link_model.cc.o.d"
  "/root/repo/src/power/flipflop_model.cc" "src/CMakeFiles/orion.dir/power/flipflop_model.cc.o" "gcc" "src/CMakeFiles/orion.dir/power/flipflop_model.cc.o.d"
  "/root/repo/src/power/link_model.cc" "src/CMakeFiles/orion.dir/power/link_model.cc.o" "gcc" "src/CMakeFiles/orion.dir/power/link_model.cc.o.d"
  "/root/repo/src/router/arbiter.cc" "src/CMakeFiles/orion.dir/router/arbiter.cc.o" "gcc" "src/CMakeFiles/orion.dir/router/arbiter.cc.o.d"
  "/root/repo/src/router/central_buffer_router.cc" "src/CMakeFiles/orion.dir/router/central_buffer_router.cc.o" "gcc" "src/CMakeFiles/orion.dir/router/central_buffer_router.cc.o.d"
  "/root/repo/src/router/credit.cc" "src/CMakeFiles/orion.dir/router/credit.cc.o" "gcc" "src/CMakeFiles/orion.dir/router/credit.cc.o.d"
  "/root/repo/src/router/crossbar_switch.cc" "src/CMakeFiles/orion.dir/router/crossbar_switch.cc.o" "gcc" "src/CMakeFiles/orion.dir/router/crossbar_switch.cc.o.d"
  "/root/repo/src/router/delay_model.cc" "src/CMakeFiles/orion.dir/router/delay_model.cc.o" "gcc" "src/CMakeFiles/orion.dir/router/delay_model.cc.o.d"
  "/root/repo/src/router/fifo.cc" "src/CMakeFiles/orion.dir/router/fifo.cc.o" "gcc" "src/CMakeFiles/orion.dir/router/fifo.cc.o.d"
  "/root/repo/src/router/flit.cc" "src/CMakeFiles/orion.dir/router/flit.cc.o" "gcc" "src/CMakeFiles/orion.dir/router/flit.cc.o.d"
  "/root/repo/src/router/link.cc" "src/CMakeFiles/orion.dir/router/link.cc.o" "gcc" "src/CMakeFiles/orion.dir/router/link.cc.o.d"
  "/root/repo/src/router/router.cc" "src/CMakeFiles/orion.dir/router/router.cc.o" "gcc" "src/CMakeFiles/orion.dir/router/router.cc.o.d"
  "/root/repo/src/router/vc_router.cc" "src/CMakeFiles/orion.dir/router/vc_router.cc.o" "gcc" "src/CMakeFiles/orion.dir/router/vc_router.cc.o.d"
  "/root/repo/src/router/vc_state.cc" "src/CMakeFiles/orion.dir/router/vc_state.cc.o" "gcc" "src/CMakeFiles/orion.dir/router/vc_state.cc.o.d"
  "/root/repo/src/router/wormhole_router.cc" "src/CMakeFiles/orion.dir/router/wormhole_router.cc.o" "gcc" "src/CMakeFiles/orion.dir/router/wormhole_router.cc.o.d"
  "/root/repo/src/sim/event.cc" "src/CMakeFiles/orion.dir/sim/event.cc.o" "gcc" "src/CMakeFiles/orion.dir/sim/event.cc.o.d"
  "/root/repo/src/sim/module.cc" "src/CMakeFiles/orion.dir/sim/module.cc.o" "gcc" "src/CMakeFiles/orion.dir/sim/module.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/orion.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/orion.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/orion.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/orion.dir/sim/simulator.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/orion.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/orion.dir/sim/stats.cc.o.d"
  "/root/repo/src/tech/capacitance.cc" "src/CMakeFiles/orion.dir/tech/capacitance.cc.o" "gcc" "src/CMakeFiles/orion.dir/tech/capacitance.cc.o.d"
  "/root/repo/src/tech/tech_node.cc" "src/CMakeFiles/orion.dir/tech/tech_node.cc.o" "gcc" "src/CMakeFiles/orion.dir/tech/tech_node.cc.o.d"
  "/root/repo/src/tech/transistor.cc" "src/CMakeFiles/orion.dir/tech/transistor.cc.o" "gcc" "src/CMakeFiles/orion.dir/tech/transistor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
