src/CMakeFiles/orion.dir/power/flipflop_model.cc.o: \
 /root/repo/src/power/flipflop_model.cc /usr/include/stdc-predef.h \
 /root/repo/src/power/flipflop_model.hh /root/repo/src/tech/tech_node.hh \
 /root/repo/src/tech/capacitance.hh /root/repo/src/tech/transistor.hh
