file(REMOVE_RECURSE
  "liborion.a"
)
