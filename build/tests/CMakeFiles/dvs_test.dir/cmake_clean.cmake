file(REMOVE_RECURSE
  "CMakeFiles/dvs_test.dir/dvs_test.cc.o"
  "CMakeFiles/dvs_test.dir/dvs_test.cc.o.d"
  "dvs_test"
  "dvs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
