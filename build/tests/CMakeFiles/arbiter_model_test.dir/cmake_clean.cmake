file(REMOVE_RECURSE
  "CMakeFiles/arbiter_model_test.dir/arbiter_model_test.cc.o"
  "CMakeFiles/arbiter_model_test.dir/arbiter_model_test.cc.o.d"
  "arbiter_model_test"
  "arbiter_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbiter_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
