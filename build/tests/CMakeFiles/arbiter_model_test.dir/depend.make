# Empty dependencies file for arbiter_model_test.
# This may be replaced when dependencies are built.
