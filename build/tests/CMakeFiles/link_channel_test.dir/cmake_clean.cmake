file(REMOVE_RECURSE
  "CMakeFiles/link_channel_test.dir/link_channel_test.cc.o"
  "CMakeFiles/link_channel_test.dir/link_channel_test.cc.o.d"
  "link_channel_test"
  "link_channel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
