# Empty dependencies file for link_channel_test.
# This may be replaced when dependencies are built.
