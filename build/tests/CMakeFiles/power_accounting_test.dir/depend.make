# Empty dependencies file for power_accounting_test.
# This may be replaced when dependencies are built.
