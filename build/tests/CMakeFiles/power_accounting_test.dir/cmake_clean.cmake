file(REMOVE_RECURSE
  "CMakeFiles/power_accounting_test.dir/power_accounting_test.cc.o"
  "CMakeFiles/power_accounting_test.dir/power_accounting_test.cc.o.d"
  "power_accounting_test"
  "power_accounting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_accounting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
