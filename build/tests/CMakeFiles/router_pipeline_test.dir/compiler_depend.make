# Empty compiler generated dependencies file for router_pipeline_test.
# This may be replaced when dependencies are built.
