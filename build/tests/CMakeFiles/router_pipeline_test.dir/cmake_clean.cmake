file(REMOVE_RECURSE
  "CMakeFiles/router_pipeline_test.dir/router_pipeline_test.cc.o"
  "CMakeFiles/router_pipeline_test.dir/router_pipeline_test.cc.o.d"
  "router_pipeline_test"
  "router_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
