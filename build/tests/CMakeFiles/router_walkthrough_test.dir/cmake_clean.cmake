file(REMOVE_RECURSE
  "CMakeFiles/router_walkthrough_test.dir/router_walkthrough_test.cc.o"
  "CMakeFiles/router_walkthrough_test.dir/router_walkthrough_test.cc.o.d"
  "router_walkthrough_test"
  "router_walkthrough_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_walkthrough_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
