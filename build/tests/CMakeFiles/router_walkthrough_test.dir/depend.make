# Empty dependencies file for router_walkthrough_test.
# This may be replaced when dependencies are built.
