file(REMOVE_RECURSE
  "CMakeFiles/arbiter_behavior_test.dir/arbiter_behavior_test.cc.o"
  "CMakeFiles/arbiter_behavior_test.dir/arbiter_behavior_test.cc.o.d"
  "arbiter_behavior_test"
  "arbiter_behavior_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbiter_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
