file(REMOVE_RECURSE
  "CMakeFiles/model_cli_test.dir/model_cli_test.cc.o"
  "CMakeFiles/model_cli_test.dir/model_cli_test.cc.o.d"
  "model_cli_test"
  "model_cli_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_cli_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
