# Empty compiler generated dependencies file for model_cli_test.
# This may be replaced when dependencies are built.
