file(REMOVE_RECURSE
  "CMakeFiles/central_buffer_model_test.dir/central_buffer_model_test.cc.o"
  "CMakeFiles/central_buffer_model_test.dir/central_buffer_model_test.cc.o.d"
  "central_buffer_model_test"
  "central_buffer_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/central_buffer_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
