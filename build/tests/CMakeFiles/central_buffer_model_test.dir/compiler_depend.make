# Empty compiler generated dependencies file for central_buffer_model_test.
# This may be replaced when dependencies are built.
