file(REMOVE_RECURSE
  "CMakeFiles/crossbar_model_test.dir/crossbar_model_test.cc.o"
  "CMakeFiles/crossbar_model_test.dir/crossbar_model_test.cc.o.d"
  "crossbar_model_test"
  "crossbar_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossbar_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
