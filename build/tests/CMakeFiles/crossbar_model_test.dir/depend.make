# Empty dependencies file for crossbar_model_test.
# This may be replaced when dependencies are built.
