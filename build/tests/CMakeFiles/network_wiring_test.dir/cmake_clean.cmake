file(REMOVE_RECURSE
  "CMakeFiles/network_wiring_test.dir/network_wiring_test.cc.o"
  "CMakeFiles/network_wiring_test.dir/network_wiring_test.cc.o.d"
  "network_wiring_test"
  "network_wiring_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_wiring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
