# Empty dependencies file for network_wiring_test.
# This may be replaced when dependencies are built.
