file(REMOVE_RECURSE
  "CMakeFiles/link_model_test.dir/link_model_test.cc.o"
  "CMakeFiles/link_model_test.dir/link_model_test.cc.o.d"
  "link_model_test"
  "link_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
