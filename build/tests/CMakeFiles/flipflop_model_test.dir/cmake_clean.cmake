file(REMOVE_RECURSE
  "CMakeFiles/flipflop_model_test.dir/flipflop_model_test.cc.o"
  "CMakeFiles/flipflop_model_test.dir/flipflop_model_test.cc.o.d"
  "flipflop_model_test"
  "flipflop_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flipflop_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
