# Empty compiler generated dependencies file for flipflop_model_test.
# This may be replaced when dependencies are built.
