file(REMOVE_RECURSE
  "CMakeFiles/credit_test.dir/credit_test.cc.o"
  "CMakeFiles/credit_test.dir/credit_test.cc.o.d"
  "credit_test"
  "credit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/credit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
