# Empty dependencies file for credit_test.
# This may be replaced when dependencies are built.
