file(REMOVE_RECURSE
  "CMakeFiles/scaling_model_test.dir/scaling_model_test.cc.o"
  "CMakeFiles/scaling_model_test.dir/scaling_model_test.cc.o.d"
  "scaling_model_test"
  "scaling_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
