# Empty compiler generated dependencies file for scaling_model_test.
# This may be replaced when dependencies are built.
