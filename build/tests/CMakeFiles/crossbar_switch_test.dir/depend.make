# Empty dependencies file for crossbar_switch_test.
# This may be replaced when dependencies are built.
