file(REMOVE_RECURSE
  "CMakeFiles/crossbar_switch_test.dir/crossbar_switch_test.cc.o"
  "CMakeFiles/crossbar_switch_test.dir/crossbar_switch_test.cc.o.d"
  "crossbar_switch_test"
  "crossbar_switch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossbar_switch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
