# Empty dependencies file for network_integration_test.
# This may be replaced when dependencies are built.
