file(REMOVE_RECURSE
  "CMakeFiles/network_integration_test.dir/network_integration_test.cc.o"
  "CMakeFiles/network_integration_test.dir/network_integration_test.cc.o.d"
  "network_integration_test"
  "network_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
