# Empty compiler generated dependencies file for central_buffer_router_test.
# This may be replaced when dependencies are built.
