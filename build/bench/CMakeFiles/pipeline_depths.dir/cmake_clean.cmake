file(REMOVE_RECURSE
  "CMakeFiles/pipeline_depths.dir/pipeline_depths.cc.o"
  "CMakeFiles/pipeline_depths.dir/pipeline_depths.cc.o.d"
  "pipeline_depths"
  "pipeline_depths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_depths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
