# Empty compiler generated dependencies file for pipeline_depths.
# This may be replaced when dependencies are built.
