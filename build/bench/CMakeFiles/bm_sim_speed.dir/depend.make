# Empty dependencies file for bm_sim_speed.
# This may be replaced when dependencies are built.
