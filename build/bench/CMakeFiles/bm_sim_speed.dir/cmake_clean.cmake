file(REMOVE_RECURSE
  "CMakeFiles/bm_sim_speed.dir/bm_sim_speed.cc.o"
  "CMakeFiles/bm_sim_speed.dir/bm_sim_speed.cc.o.d"
  "bm_sim_speed"
  "bm_sim_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_sim_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
