file(REMOVE_RECURSE
  "CMakeFiles/table2_buffer_model.dir/table2_buffer_model.cc.o"
  "CMakeFiles/table2_buffer_model.dir/table2_buffer_model.cc.o.d"
  "table2_buffer_model"
  "table2_buffer_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_buffer_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
