# Empty dependencies file for fig5_wh_vs_vc.
# This may be replaced when dependencies are built.
