file(REMOVE_RECURSE
  "CMakeFiles/fig5_wh_vs_vc.dir/fig5_wh_vs_vc.cc.o"
  "CMakeFiles/fig5_wh_vs_vc.dir/fig5_wh_vs_vc.cc.o.d"
  "fig5_wh_vs_vc"
  "fig5_wh_vs_vc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_wh_vs_vc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
