# Empty compiler generated dependencies file for bm_power_models.
# This may be replaced when dependencies are built.
