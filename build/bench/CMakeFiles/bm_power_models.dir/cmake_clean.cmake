file(REMOVE_RECURSE
  "CMakeFiles/bm_power_models.dir/bm_power_models.cc.o"
  "CMakeFiles/bm_power_models.dir/bm_power_models.cc.o.d"
  "bm_power_models"
  "bm_power_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_power_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
