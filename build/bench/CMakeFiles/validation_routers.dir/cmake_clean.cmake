file(REMOVE_RECURSE
  "CMakeFiles/validation_routers.dir/validation_routers.cc.o"
  "CMakeFiles/validation_routers.dir/validation_routers.cc.o.d"
  "validation_routers"
  "validation_routers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_routers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
