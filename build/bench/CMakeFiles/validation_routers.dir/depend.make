# Empty dependencies file for validation_routers.
# This may be replaced when dependencies are built.
