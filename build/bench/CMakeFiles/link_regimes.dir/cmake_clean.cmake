file(REMOVE_RECURSE
  "CMakeFiles/link_regimes.dir/link_regimes.cc.o"
  "CMakeFiles/link_regimes.dir/link_regimes.cc.o.d"
  "link_regimes"
  "link_regimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_regimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
