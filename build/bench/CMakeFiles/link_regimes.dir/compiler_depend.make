# Empty compiler generated dependencies file for link_regimes.
# This may be replaced when dependencies are built.
