# Empty dependencies file for fig7_cb_vs_xb.
# This may be replaced when dependencies are built.
