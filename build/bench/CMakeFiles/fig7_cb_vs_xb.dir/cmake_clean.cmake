file(REMOVE_RECURSE
  "CMakeFiles/fig7_cb_vs_xb.dir/fig7_cb_vs_xb.cc.o"
  "CMakeFiles/fig7_cb_vs_xb.dir/fig7_cb_vs_xb.cc.o.d"
  "fig7_cb_vs_xb"
  "fig7_cb_vs_xb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_cb_vs_xb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
