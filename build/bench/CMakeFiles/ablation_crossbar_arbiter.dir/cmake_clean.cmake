file(REMOVE_RECURSE
  "CMakeFiles/ablation_crossbar_arbiter.dir/ablation_crossbar_arbiter.cc.o"
  "CMakeFiles/ablation_crossbar_arbiter.dir/ablation_crossbar_arbiter.cc.o.d"
  "ablation_crossbar_arbiter"
  "ablation_crossbar_arbiter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_crossbar_arbiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
