# Empty compiler generated dependencies file for ablation_crossbar_arbiter.
# This may be replaced when dependencies are built.
