# Empty compiler generated dependencies file for simulator_footprint.
# This may be replaced when dependencies are built.
