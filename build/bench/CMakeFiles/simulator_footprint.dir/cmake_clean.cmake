file(REMOVE_RECURSE
  "CMakeFiles/simulator_footprint.dir/simulator_footprint.cc.o"
  "CMakeFiles/simulator_footprint.dir/simulator_footprint.cc.o.d"
  "simulator_footprint"
  "simulator_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulator_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
