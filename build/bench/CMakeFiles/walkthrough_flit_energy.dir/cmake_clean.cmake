file(REMOVE_RECURSE
  "CMakeFiles/walkthrough_flit_energy.dir/walkthrough_flit_energy.cc.o"
  "CMakeFiles/walkthrough_flit_energy.dir/walkthrough_flit_energy.cc.o.d"
  "walkthrough_flit_energy"
  "walkthrough_flit_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walkthrough_flit_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
