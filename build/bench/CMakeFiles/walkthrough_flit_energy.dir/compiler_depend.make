# Empty compiler generated dependencies file for walkthrough_flit_energy.
# This may be replaced when dependencies are built.
