file(REMOVE_RECURSE
  "CMakeFiles/table4_arbiter_model.dir/table4_arbiter_model.cc.o"
  "CMakeFiles/table4_arbiter_model.dir/table4_arbiter_model.cc.o.d"
  "table4_arbiter_model"
  "table4_arbiter_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_arbiter_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
