# Empty compiler generated dependencies file for table4_arbiter_model.
# This may be replaced when dependencies are built.
