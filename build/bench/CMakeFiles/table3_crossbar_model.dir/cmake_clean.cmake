file(REMOVE_RECURSE
  "CMakeFiles/table3_crossbar_model.dir/table3_crossbar_model.cc.o"
  "CMakeFiles/table3_crossbar_model.dir/table3_crossbar_model.cc.o.d"
  "table3_crossbar_model"
  "table3_crossbar_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_crossbar_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
