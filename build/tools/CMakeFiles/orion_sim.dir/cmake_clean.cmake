file(REMOVE_RECURSE
  "CMakeFiles/orion_sim.dir/orion_sim.cc.o"
  "CMakeFiles/orion_sim.dir/orion_sim.cc.o.d"
  "orion_sim"
  "orion_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orion_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
