# Empty dependencies file for orion_sim.
# This may be replaced when dependencies are built.
