file(REMOVE_RECURSE
  "CMakeFiles/orion_sweep.dir/orion_sweep.cc.o"
  "CMakeFiles/orion_sweep.dir/orion_sweep.cc.o.d"
  "orion_sweep"
  "orion_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orion_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
