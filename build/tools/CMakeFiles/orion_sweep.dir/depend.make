# Empty dependencies file for orion_sweep.
# This may be replaced when dependencies are built.
