file(REMOVE_RECURSE
  "CMakeFiles/orion_models.dir/orion_models.cc.o"
  "CMakeFiles/orion_models.dir/orion_models.cc.o.d"
  "orion_models"
  "orion_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orion_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
