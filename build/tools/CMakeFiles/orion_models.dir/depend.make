# Empty dependencies file for orion_models.
# This may be replaced when dependencies are built.
