#!/bin/sh
# Repo check driver — the full correctness matrix:
#
#   1. tier-1:   configure + build (warnings-as-errors) + full ctest
#   2. asan:     ASan+UBSan build; fuzz, audit, fault and
#                parallel-sweep tests at the paranoid check level,
#                plus a fault-injection orion_sweep smoke run
#   3. tsan:     ThreadSanitizer build of the parallel sweep engine
#   4. overhead: bench/sweep_speed at check levels off/cheap/paranoid,
#                reporting the runtime cost of the invariant layer
#                (cheap must stay under 5%), then
#                bench/telemetry_overhead gating the windowed-sampler
#                cost on the disabled baseline (sampled must stay
#                under 2%; tracing is reported but not gated — it is
#                an opt-in debugging mode)
#   5. kernel:   bench/kernel_speed serial flits/sec vs the committed
#                BENCH_kernel.json — fails on a >10% regression on
#                either reference config (vc16, k16n2). Runs twice:
#                once plain (cancellation compiled in, token unset)
#                and once under ORION_KERNEL_CANCEL=1 (live armed
#                token that never fires), both against the same gate,
#                proving the per-cycle CancelToken check is free on
#                the hot path
#   6. survive:  kill-and-resume drill — a checkpointed sweep with a
#                live heartbeat is SIGKILLed mid-flight; the heartbeat
#                must still parse (orion_status.py --once) with a
#                done-count consistent with the journal; the resume
#                must produce a CSV byte-identical to an uninterrupted
#                run, report the carried-over cells in its heartbeat,
#                and leave a valid run manifest beside the journal;
#                then an --isolate sweep with a deliberately
#                SIGSEGVing point (--debug-segv-rate) must record a
#                structured worker-crash failure while every other
#                point completes
#   7. serve:    resident-service drill — an orion_served daemon with
#                a persistent result cache computes a reference job,
#                is SIGKILLed mid-job on a second cache, restarted,
#                and re-asked: the answer must come partly from cache
#                (stats prove hits) and be byte-identical to the
#                uninterrupted reference; then admission control is
#                exercised (a tiny queue bound must reject with the
#                structured queue_full code) and a malformed
#                submission must be rejected as invalid_config
#   8. lint:     tools/orion_lint.py, plus clang-tidy when installed
#   9. analysis: tools/orion_analyze.py (determinism/concurrency
#                rules + thread-safety annotation coverage) and its
#                fixture tests; when a clang++ is installed, a Clang
#                build with -Wthread-safety promoted to errors
#                verifies the ORION_GUARDED_BY/ORION_REQUIRES
#                annotations for real (they are no-ops under GCC)
#
# Usage: tools/check.sh [--tier1-only|--asan-only|--tsan-only|
#                        --overhead-only|--kernel-only|--survive-only|
#                        --serve-only|--lint-only|--analysis-only]
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
mode=${1:-all}

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)

run_leg() {
    case "$mode" in
        all|"--$1-only") return 0 ;;
        *) return 1 ;;
    esac
}

if run_leg tier1; then
    echo "== tier-1: configure + build (-Werror) + ctest =="
    cmake -B "$root/build" -S "$root" -DORION_WERROR=ON
    cmake --build "$root/build" -j "$jobs"
    # --timeout: a deadlocked simulation fails its test instead of
    # wedging the whole leg.
    ctest --test-dir "$root/build" --output-on-failure -j "$jobs" \
        --timeout 600
fi

if run_leg asan; then
    echo "== ASan+UBSan: fuzz/audit/sweep tests, paranoid checks =="
    cmake -B "$root/build-asan" -S "$root" \
        -DORION_ASAN=ON -DORION_UBSAN=ON -DORION_WERROR=ON
    cmake --build "$root/build-asan" -j "$jobs" \
        --target fuzz_test audit_test fault_test parallel_sweep_test \
        sweep_test reroute_test deadlock_test orion_sweep
    for t in fuzz_test audit_test fault_test parallel_sweep_test \
        sweep_test reroute_test deadlock_test; do
        ORION_CHECK=paranoid "$root/build-asan/tests/$t"
    done
    echo "== ASan+UBSan: fault-injection sweep smoke =="
    ORION_CHECK=paranoid "$root/build-asan/tools/orion_sweep" \
        --rates 0.02:0.06:3 --sample 500 --link-ber 2e-6 \
        --link-outage 1200:1500 --jobs 2 > /dev/null
fi

if run_leg tsan; then
    echo "== TSan: parallel sweep engine under ThreadSanitizer =="
    cmake -B "$root/build-tsan" -S "$root" -DORION_TSAN=ON
    cmake --build "$root/build-tsan" -j "$jobs" \
        --target parallel_sweep_test sweep_test
    ORION_CHECK=paranoid "$root/build-tsan/tests/parallel_sweep_test"
    ORION_CHECK=paranoid "$root/build-tsan/tests/sweep_test"
fi

if run_leg overhead; then
    echo "== overhead: invariant-check cost on bench/sweep_speed =="
    cmake -B "$root/build" -S "$root"
    cmake --build "$root/build" -j "$jobs" --target sweep_speed
    overhead_dir="$root/build/overhead"
    mkdir -p "$overhead_dir"
    # Alternate levels and keep the best of 3 runs per level: single
    # runs on a loaded machine are noisier than the effect measured.
    for rep in 1 2 3; do
        for level in off cheap paranoid; do
            ORION_CHECK=$level \
                ORION_BENCH_JSON="$overhead_dir/sweep_${level}_$rep.json" \
                "$root/build/bench/sweep_speed" > /dev/null
        done
    done
    python3 - "$overhead_dir" <<'EOF'
import json, sys
d = sys.argv[1]
wall = {}
for level in ("off", "cheap", "paranoid"):
    wall[level] = min(
        json.load(open(f"{d}/sweep_{level}_{rep}.json"))["serial"]["wall_s"]
        for rep in (1, 2, 3))
base = wall["off"]
cheap = 100.0 * (wall["cheap"] - base) / base
paranoid = 100.0 * (wall["paranoid"] - base) / base
print(f"check-level overhead vs off ({base:.2f} s serial, best of 3):")
print(f"  cheap    {wall['cheap']:.2f} s  ({cheap:+.1f}%)")
print(f"  paranoid {wall['paranoid']:.2f} s  ({paranoid:+.1f}%)")
if cheap >= 5.0:
    sys.exit(f"FAIL: cheap-level overhead {cheap:.1f}% >= 5%")
EOF

    echo "== overhead: telemetry cost on bench/telemetry_overhead =="
    cmake --build "$root/build" -j "$jobs" --target telemetry_overhead
    # Best of 3 whole-benchmark runs; the benchmark itself is already
    # best-of-ORION_REPS internally, so keep its reps modest.
    for rep in 1 2 3; do
        ORION_REPS=2 \
            ORION_BENCH_JSON="$overhead_dir/telemetry_$rep.json" \
            "$root/build/bench/telemetry_overhead" > /dev/null
    done
    python3 - "$overhead_dir" <<'EOF'
import json, sys
d = sys.argv[1]
runs = [json.load(open(f"{d}/telemetry_{rep}.json")) for rep in (1, 2, 3)]
# Best-of-3 per mode: the minimum is the least-noisy estimate of the
# true cost of each mode, so overheads come from the minima.
wall = {m: min(r[m]["wall_s"] for r in runs)
        for m in ("disabled", "sampled_1k", "traced")}
base = wall["disabled"]
sampled = 100.0 * (wall["sampled_1k"] - base) / base
traced = 100.0 * (wall["traced"] - base) / base
print(f"telemetry overhead vs disabled ({base:.2f} s, best of 3):")
print(f"  sampled (1k cycles) {sampled:+.1f}%")
print(f"  sampled + traced    {traced:+.1f}%  (opt-in, not gated)")
if sampled >= 2.0:
    sys.exit(f"FAIL: sampled telemetry overhead {sampled:.1f}% >= 2%")
EOF
fi

if run_leg kernel; then
    echo "== kernel: serial flits/sec vs committed BENCH_kernel.json =="
    cmake -B "$root/build" -S "$root"
    cmake --build "$root/build" -j "$jobs" --target kernel_speed
    kernel_dir="$root/build/overhead"
    mkdir -p "$kernel_dir"
    # kernel_speed is internally best-of-ORION_REPS; 5 reps tames the
    # ±5% run-to-run noise observed on shared runners.
    ORION_REPS=5 ORION_BENCH_JSON="$kernel_dir/kernel_now.json" \
        ORION_KERNEL_BASELINE="$root/BENCH_kernel.json" \
        "$root/build/bench/kernel_speed"
    # Second pass with a live (armed, never-firing) CancelToken on the
    # cycle loop: the same gate must stay green, proving cancellation
    # support costs nothing measurable on the hot path.
    echo "== kernel: same gate with a live CancelToken (cancel mode) =="
    ORION_REPS=5 ORION_KERNEL_CANCEL=1 \
        ORION_BENCH_JSON="$kernel_dir/kernel_cancel.json" \
        ORION_KERNEL_BASELINE="$root/BENCH_kernel.json" \
        "$root/build/bench/kernel_speed"
    for now_json in kernel_now.json kernel_cancel.json; do
        python3 - "$kernel_dir/$now_json" "$root/BENCH_kernel.json" <<'EOF'
import json, sys
now = json.load(open(sys.argv[1]))["configs"]
ref = json.load(open(sys.argv[2]))["configs"]
fail = []
for name, r in ref.items():
    cur = now[name]["flits_per_s"]
    base = r["flits_per_s"]
    delta = 100.0 * (cur - base) / base
    print(f"  {name:6s} {cur/1e6:.3f} Mflits/s vs committed "
          f"{base/1e6:.3f} ({delta:+.1f}%)")
    if delta < -10.0:
        fail.append(f"{name} regressed {delta:.1f}% (> 10% threshold)")
if fail:
    sys.exit("FAIL: " + "; ".join(fail))
EOF
    done
fi

if run_leg survive; then
    echo "== survive: SIGKILL mid-sweep, resume, diff vs clean run =="
    cmake -B "$root/build" -S "$root"
    cmake --build "$root/build" -j "$jobs" --target orion_sweep orion_sim
    sdir="$root/build/survive"
    rm -rf "$sdir"
    mkdir -p "$sdir"
    sweep="$root/build/tools/orion_sweep"
    args="--rates 0.02:0.30:8 --sample 20000 --max-cycles 2000000"
    # Reference: the same grid, uninterrupted.
    $sweep $args --jobs 2 > "$sdir/reference.csv"
    # Victim: checkpointed with a live heartbeat, then SIGKILLed
    # (uncatchable — exercises the torn-tail tolerance and the
    # atomic heartbeat replacement, not the cooperative handlers).
    $sweep $args --jobs 2 --checkpoint "$sdir/journal" \
        --heartbeat "$sdir/hb.json" --heartbeat-interval 0.2 \
        > /dev/null 2> /dev/null &
    victim=$!
    sleep 0.7
    kill -KILL "$victim" 2> /dev/null || true
    wait "$victim" 2> /dev/null || true
    # The killed run's heartbeat must still parse (atomic replacement
    # leaves the last complete snapshot) and its done-count must agree
    # with the journal: never ahead of it, and at most `jobs` behind
    # (a worker can die between the journal append and the heartbeat).
    status=$(python3 "$root/tools/orion_status.py" --once "$sdir/hb.json")
    echo "killed-run status: $status"
    journal_entries=$(($(wc -l < "$sdir/journal") - 1))
    python3 - "$status" "$journal_entries" <<'EOF'
import json, sys
s = json.loads(sys.argv[1])
journal = int(sys.argv[2])
assert s["ok"], s
assert not s["finished"], "SIGKILLed run cannot have finished"
done, jobs = s["done"], s["jobs"]
# The torn tail may drop the journal's final line, so allow done to
# lead by that one crash artifact.
assert done <= journal + 1, f"heartbeat done={done} > journal={journal}+1"
assert journal - done <= jobs, \
    f"heartbeat done={done} lags journal={journal} by more than jobs={jobs}"
print(f"heartbeat survives SIGKILL: done={done}, journal={journal}")
EOF
    # Resume at a different job count: merged CSV must be identical,
    # and the resumed run's heartbeat must account for the cells
    # carried over from the journal.
    $sweep $args --jobs 4 --resume "$sdir/journal" \
        --heartbeat "$sdir/hb_resumed.json" > "$sdir/resumed.csv" \
        2> /dev/null
    cmp "$sdir/reference.csv" "$sdir/resumed.csv"
    echo "resumed CSV byte-identical to the uninterrupted run"
    status=$(python3 "$root/tools/orion_status.py" --once \
        "$sdir/hb_resumed.json")
    echo "resumed-run status: $status"
    python3 - "$status" <<'EOF'
import json, sys
s = json.loads(sys.argv[1])
assert s["ok"] and s["finished"], s
assert s["done"] == s["total"], s
assert s["from_checkpoint"] > 0, \
    "resumed run must report carried-over points"
print(f"resume accounted: {s['from_checkpoint']}/{s['total']} "
      "from checkpoint")
EOF
    # Journaling auto-writes a run manifest beside the journal.
    python3 - "$sdir/journal.manifest.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
assert m["schema"] == "orion-run-manifest-v1", m
assert m["tool"] == "orion_sweep", m
print(f"manifest written: fingerprint {m['fingerprint']}, "
      f"stop {m['stop_reason']}")
EOF

    echo "== survive: --isolate absorbs a SIGSEGVing worker =="
    rc=0
    $sweep --rates 0.02:0.06:3 --sample 500 --isolate \
        --debug-segv-rate 0.04 > "$sdir/isolate.csv" \
        2> "$sdir/isolate.err" || rc=$?
    [ "$rc" -eq 3 ] || {
        echo "FAIL: expected exit 3 (failed point), got $rc"
        cat "$sdir/isolate.err"
        exit 1
    }
    grep -q "worker-crash" "$sdir/isolate.err" || {
        echo "FAIL: no structured worker-crash diagnosis on stderr"
        cat "$sdir/isolate.err"
        exit 1
    }
    # The two healthy rates still completed and made it into the CSV.
    healthy=$(grep -c "^0.0[26]00,1," "$sdir/isolate.csv" || true)
    [ "$healthy" -eq 2 ] || {
        echo "FAIL: expected 2 healthy points in CSV, got $healthy"
        cat "$sdir/isolate.csv"
        exit 1
    }
    echo "worker crash recorded; sibling points unaffected"
fi

if run_leg serve; then
    echo "== serve: daemon SIGKILL/restart, cache byte-identity =="
    cmake -B "$root/build" -S "$root"
    cmake --build "$root/build" -j "$jobs" \
        --target orion_served orion_submit
    vdir="$root/build/serve"
    rm -rf "$vdir"
    mkdir -p "$vdir"
    served="$root/build/tools/orion_served"
    submit="$root/build/tools/orion_submit"
    simargs="--sample 20000 --max-cycles 2000000"
    rates="0.02:0.30:6"

    # Poll until the daemon on $sock answers the stats verb: the
    # socket file alone is not enough (a SIGKILLed daemon leaves a
    # stale one behind).
    wait_ready() {
        tries=0
        while [ "$tries" -lt 100 ]; do
            if "$submit" --socket "$sock" stats \
                > /dev/null 2> /dev/null; then
                return 0
            fi
            tries=$((tries + 1))
            sleep 0.1
        done
        echo "FAIL: daemon on $sock never became ready"
        return 1
    }

    # Reference: an uninterrupted daemon computes the grid once, then
    # drains on SIGTERM and leaves a shutdown manifest.
    sock="$vdir/ref.sock"
    "$served" --socket "$sock" --cache-dir "$vdir/cache-ref" \
        --workers 2 2> "$vdir/ref.log" &
    daemon=$!
    wait_ready
    "$submit" --socket "$sock" submit --rates "$rates" --wait \
        --out "$vdir/ref.txt" -- $simargs > /dev/null
    kill -TERM "$daemon"
    wait "$daemon"
    [ -s "$vdir/ref.txt" ] || {
        echo "FAIL: reference job produced no result bytes"
        exit 1
    }
    python3 - "$sock.manifest.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
assert m["schema"] == "orion-served-shutdown-v1", m
assert m["signal"] == 15, m
assert m["server"]["completed"] == 1, m
assert m["server"]["points_computed"] == 6, m
print("drain: shutdown manifest accounts for the reference job")
EOF

    # Victim: same grid on a fresh cache, SIGKILLed once at least one
    # point has landed, then restarted on the same cache directory.
    # The re-asked job must be served partly from cache and the bytes
    # must match the uninterrupted reference exactly.
    sock="$vdir/kill.sock"
    "$served" --socket "$sock" --cache-dir "$vdir/cache-kill" \
        --workers 2 2> "$vdir/kill1.log" &
    daemon=$!
    wait_ready
    "$submit" --socket "$sock" submit --rates "$rates" \
        -- $simargs > /dev/null
    tries=0
    st=""
    while [ "$tries" -lt 300 ]; do
        st=$("$submit" --socket "$sock" status 1)
        case "$st" in
            *'"done":0,'*) ;;
            *) break ;;
        esac
        tries=$((tries + 1))
        sleep 0.1
    done
    case "$st" in
        *'"done":0,'*)
            echo "FAIL: no point completed before the kill"
            exit 1 ;;
    esac
    kill -KILL "$daemon" 2> /dev/null || true
    wait "$daemon" 2> /dev/null || true
    rm -f "$sock" # the SIGKILLed daemon could not unlink it
    "$served" --socket "$sock" --cache-dir "$vdir/cache-kill" \
        --workers 2 2> "$vdir/kill2.log" &
    daemon=$!
    wait_ready
    "$submit" --socket "$sock" submit --rates "$rates" --wait \
        --out "$vdir/recovered.txt" -- $simargs > /dev/null
    cmp "$vdir/ref.txt" "$vdir/recovered.txt"
    echo "recovered result byte-identical to the reference"
    stats=$("$submit" --socket "$sock" stats)
    kill -TERM "$daemon"
    wait "$daemon"
    python3 - "$stats" <<'EOF'
import json, sys
s = json.loads(sys.argv[1])
assert s["ok"], s
hits = s["server"]["points_from_cache"]
assert hits > 0, f"restart served nothing from cache: {s['server']}"
assert hits + s["server"]["points_computed"] == 6, s["server"]
cache = s["cache"]
assert cache["schema"] == "orion-cache-manifest-v1", cache
assert cache["entries"] >= hits, cache
print(f"cache survived SIGKILL: {hits}/6 points served from cache "
      f"({cache['entries']} entries recovered from disk)")
EOF

    echo "== serve: admission control + config validation =="
    sock="$vdir/queue.sock"
    "$served" --socket "$sock" --workers 1 --queue-max 1 \
        2> "$vdir/queue.log" &
    daemon=$!
    wait_ready
    # Job 1 is big enough to pin the single worker while jobs 2 and 3
    # arrive; job 2 fills the queue; job 3 must bounce.
    "$submit" --socket "$sock" submit \
        -- --rate 0.25 --sample 400000 --max-cycles 20000000 \
        > /dev/null
    tries=0
    while [ "$tries" -lt 100 ]; do
        st=$("$submit" --socket "$sock" status 1)
        case "$st" in
            *'"state":"running"'*) break ;;
        esac
        tries=$((tries + 1))
        sleep 0.1
    done
    "$submit" --socket "$sock" submit \
        -- --rate 0.25 --sample 400000 --max-cycles 20000000 \
        > /dev/null
    rc=0
    reply=$("$submit" --socket "$sock" submit \
        -- --rate 0.25 --sample 400000 2> /dev/null) || rc=$?
    [ "$rc" -eq 2 ] || {
        echo "FAIL: expected structured-rejection exit 2, got $rc"
        exit 1
    }
    case "$reply" in
        *'"error":"queue_full"'*) ;;
        *)
            echo "FAIL: expected queue_full rejection, got: $reply"
            exit 1 ;;
    esac
    echo "queue bound enforced: third job rejected with queue_full"
    # A malformed configuration is rejected before admission, with
    # its own structured code.
    rc=0
    reply=$("$submit" --socket "$sock" submit \
        -- --rate 1.7 2> /dev/null) || rc=$?
    [ "$rc" -eq 2 ] || {
        echo "FAIL: expected invalid-config exit 2, got $rc"
        exit 1
    }
    case "$reply" in
        *'"error":"invalid_config"'*) ;;
        *)
            echo "FAIL: expected invalid_config rejection: $reply"
            exit 1 ;;
    esac
    echo "malformed submission rejected with invalid_config"
    # Cooperative cancel lets the drain finish promptly.
    "$submit" --socket "$sock" cancel 1 > /dev/null
    "$submit" --socket "$sock" cancel 2 > /dev/null
    kill -TERM "$daemon"
    wait "$daemon"
fi

if run_leg lint; then
    echo "== lint: orion_lint + clang-tidy =="
    python3 "$root/tools/orion_lint.py" --root "$root"
    if command -v clang-tidy > /dev/null 2>&1; then
        cmake -B "$root/build" -S "$root" > /dev/null
        cmake --build "$root/build" --target lint
    else
        echo "clang-tidy not installed; skipping (CI runs it)"
    fi
fi

if run_leg analysis; then
    echo "== analysis: orion_analyze + fixtures =="
    python3 "$root/tools/orion_analyze.py" --root "$root"
    python3 "$root/tests/analysis/run_analyzer_tests.py" \
        --analyzer "$root/tools/orion_analyze.py" \
        --fixtures "$root/tests/analysis/fixtures"
    if command -v clang++ > /dev/null 2>&1; then
        echo "== analysis: Clang thread-safety annotations as errors =="
        cmake -B "$root/build-clang" -S "$root" \
            -DCMAKE_CXX_COMPILER=clang++ \
            -DCMAKE_CXX_FLAGS="-Werror=thread-safety -Werror=thread-safety-beta"
        cmake --build "$root/build-clang" -j "$jobs" --target orion
    else
        echo "clang++ not installed; annotation verification skipped" \
             "(CI's analysis job runs it)"
    fi
fi

echo "== check.sh: all green =="
