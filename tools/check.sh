#!/bin/sh
# Repo check driver: the tier-1 build + test run, then a
# ThreadSanitizer build of the parallel sweep engine to keep the
# threading honest. Usage: tools/check.sh [--tsan-only|--tier1-only]
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
mode=${1:-all}

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)

if [ "$mode" != "--tsan-only" ]; then
    echo "== tier-1: configure + build + ctest =="
    cmake -B "$root/build" -S "$root"
    cmake --build "$root/build" -j "$jobs"
    ctest --test-dir "$root/build" --output-on-failure -j "$jobs"
fi

if [ "$mode" != "--tier1-only" ]; then
    echo "== TSan: parallel sweep engine under ThreadSanitizer =="
    cmake -B "$root/build-tsan" -S "$root" -DORION_TSAN=ON
    cmake --build "$root/build-tsan" -j "$jobs" \
        --target parallel_sweep_test sweep_test
    "$root/build-tsan/tests/parallel_sweep_test"
    "$root/build-tsan/tests/sweep_test"
fi

echo "== check.sh: all green =="
