#!/usr/bin/env python3
"""Project-specific lint for the Orion simulator sources.

Orion's reproduction claims rest on bit-identical determinism and on
library code that never bypasses the simulator's ownership and
reporting conventions. Generic linters don't know those rules; this
one does:

  nondeterminism     rand()/srand()/time()/std::random_device and
                     wall-clock std::chrono clocks are forbidden in
                     src/ outside sim/rng.* (benchmarks may read the
                     wall clock to *measure*, never to *seed*).
  naked-new          no naked new/delete in src/ — ownership goes
                     through std::unique_ptr/std::vector.
  file-scope-state   no mutable file-scope state in sim/router/power/
                     net sources: modules must be re-entrant so
                     parallel sweep workers can run independent
                     simulations concurrently.
  include-guard      headers use #ifndef ORION_<PATH>_HH guards that
                     match their path; #pragma once is forbidden
                     (one consistent style, greppable).
  stdout-in-library  src/ never writes to stdout/stderr directly;
                     reporting code takes an std::ostream&. (CLI entry
                     points live in tools/, which may print.)
  naked-stderr       diagnostics in src/ and tools/ must flow through
                     core/log (log::diag/log::event) so a configured
                     --log-out sink mirrors every stderr message;
                     fprintf(stderr, ...)/std::cerr bypass it. The
                     logger backend itself (src/core/log.cc) is
                     exempt. bench/ harnesses are out of scope.
  stat-printing      src/net and src/router must not print statistics
                     at all, not even to an ostream snuck in via
                     stdout: counters belong in telemetry::
                     MetricsRegistry (sampled by net::WindowedSampler)
                     or the end-of-run Report, so every statistic is
                     machine-readable and deterministic.
  fault-hooks        src/router must not reference net::FaultInjector
                     or include net/fault.hh: routers see faults only
                     through the router/fault_hooks.hh interface, so
                     the router layer stays independent of the net
                     layer's fault machinery.
  unused-suppression a "// lint-allow: <rule>" comment that no longer
                     suppresses anything (or names an unknown rule) is
                     itself a finding, so suppressions cannot outlive
                     the code they excused.

A finding can be suppressed by appending "// lint-allow: <rule>" to
the offending line (unused-suppression findings cannot be
suppressed). Exit status is 0 when clean, 1 when findings exist, 2 on
usage errors.

Usage: orion_lint.py [--root DIR] [--list-rules]
"""

import argparse
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".cc", ".hh"}
SCAN_DIRS = ("src", "tools", "bench", "tests")

# orion_analyze.py's fixture mini-roots violate rules on purpose.
SKIP_PREFIXES = ("tests/analysis/fixtures/",)

KNOWN_RULES = (
    "nondeterminism", "naked-new", "file-scope-state", "include-guard",
    "stdout-in-library", "stat-printing", "fault-hooks", "naked-stderr",
    "unused-suppression",
)

# Directories whose modules must be re-entrant (parallel sweeps run
# one Simulation per worker thread).
REENTRANT_DIRS = ("src/sim", "src/router", "src/power", "src/net")

# Directories where any direct printing is treated as stat-printing:
# these modules own the counters, and stats must flow through the
# MetricsRegistry or the Report, never ad-hoc prints.
STAT_DIRS = ("src/net/", "src/router/")

SUPPRESS_RE = re.compile(r"//\s*lint-allow:\s*([\w-]+)")

NONDET_PATTERNS = [
    (re.compile(r"\brand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\btime\s*\(\s*(NULL|nullptr|0)?\s*\)"), "time()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (
        re.compile(
            r"chrono::(system_clock|steady_clock|high_resolution_clock)"
        ),
        "wall-clock std::chrono",
    ),
]

# Stderr-targeted writes that bypass core/log (the structured sink
# can't mirror them). std::cerr is always stderr; fprintf/fputs only
# when the stream argument is literally stderr.
STDERR_RE = re.compile(
    r"std::cerr|\bfprintf\s*\(\s*stderr\b|\bfputs\s*\([^;]*,\s*stderr\s*\)"
)
# The logger backend owns the real stderr writes.
STDERR_EXEMPT = ("src/core/log.cc",)

NEW_RE = re.compile(r"\bnew\s+[A-Za-z_(]")
DELETE_RE = re.compile(r"\bdelete\b(\s*\[\s*\])?\s+[A-Za-z_*(]")
STDOUT_RE = re.compile(r"std::cout|std::cerr|\bfprintf\s*\(|(?<![\w:])printf\s*\(")
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\b")
IFNDEF_RE = re.compile(r"^\s*#\s*ifndef\s+(\w+)")
DEFINE_RE = re.compile(r"^\s*#\s*define\s+(\w+)\s*$")

# File-scope mutable state: a column-0 "static"/"thread_local"
# declaration that is not const/constexpr and is a variable (no
# parameter list before the initializer/semicolon => not a function).
FILE_SCOPE_RE = re.compile(r"^(static|thread_local)\b")
FILE_SCOPE_OK_RE = re.compile(
    r"^(static|thread_local)\s+(thread_local\s+)?(const\b|constexpr\b)"
)

# Router-layer isolation: routers must observe faults only through the
# router/fault_hooks.hh interface, never the net-layer injector.
FAULT_INJECTOR_RE = re.compile(r"\bFaultInjector\b")
FAULT_INCLUDE_RE = re.compile(r'#\s*include\s*"net/fault\.hh"')


def strip_comments_and_strings(line, in_block_comment):
    """Blank out string/char literals and comments, preserving length.

    Returns (cleaned_line, in_block_comment_after)."""
    out = []
    i = 0
    n = len(line)
    state = "block" if in_block_comment else "code"
    while i < n:
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                break  # rest of line is a comment
            if c == "/" and nxt == "*":
                state = "block"
                i += 2
                continue
            if c == '"':
                state = "dquote"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "squote"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                i += 1
        else:  # inside a literal
            if c == "\\":
                i += 2
                continue
            if (state == "dquote" and c == '"') or (
                state == "squote" and c == "'"
            ):
                state = "code"
            i += 1
    return "".join(out), state == "block"


class Linter:
    def __init__(self, root):
        self.root = root
        self.findings = []
        # lint-allow sites and the subset that suppressed something.
        self.suppression_sites = []  # (rel str, lineno, rule)
        self.used_suppressions = set()  # (rel str, lineno)

    def report(self, path, lineno, rule, message, raw_line):
        m = SUPPRESS_RE.search(raw_line)
        rel = path.relative_to(self.root)
        if m and m.group(1) == rule:
            self.used_suppressions.add((rel.as_posix(), lineno))
            return
        self.findings.append(f"{rel}:{lineno}: [{rule}] {message}")

    def lint_file(self, path):
        rel = path.relative_to(self.root).as_posix()
        try:
            raw = path.read_text(encoding="utf-8")
        except UnicodeDecodeError:
            self.findings.append(f"{rel}:1: [encoding] not valid UTF-8")
            return
        lines = raw.splitlines()

        for idx, line in enumerate(lines, 1):
            m = SUPPRESS_RE.search(line)
            if m:
                self.suppression_sites.append((rel, idx, m.group(1)))

        in_src = rel.startswith("src/")
        is_rng = rel.startswith("src/sim/rng")
        reentrant = rel.startswith(REENTRANT_DIRS)
        in_block = False
        cleaned_lines = []
        for line in lines:
            cleaned, in_block = strip_comments_and_strings(line, in_block)
            cleaned_lines.append(cleaned)

        for idx, (line, code) in enumerate(zip(lines, cleaned_lines), 1):
            if in_src and not is_rng:
                for pat, what in NONDET_PATTERNS:
                    if pat.search(code):
                        self.report(
                            path, idx, "nondeterminism",
                            f"{what} breaks run determinism; draw from "
                            "sim::Rng (seeded) instead", line)
            elif not in_src:
                # Outside src/ wall-clock timing is legitimate, but
                # non-seeded randomness still poisons reproducibility.
                for pat, what in NONDET_PATTERNS[:4]:
                    if pat.search(code):
                        self.report(
                            path, idx, "nondeterminism",
                            f"{what} is not seedable; use sim::Rng with "
                            "an explicit seed", line)

            if in_src:
                if NEW_RE.search(code):
                    self.report(
                        path, idx, "naked-new",
                        "naked new; use std::make_unique/containers",
                        line)
                if DELETE_RE.search(code):
                    self.report(
                        path, idx, "naked-new",
                        "naked delete; owning pointers must be smart",
                        line)
                if STDOUT_RE.search(code):
                    if rel.startswith(STAT_DIRS):
                        self.report(
                            path, idx, "stat-printing",
                            "network/router code must not print stats; "
                            "register them with telemetry::"
                            "MetricsRegistry or report them via Report",
                            line)
                    elif (STDERR_RE.search(code)
                          and rel not in STDERR_EXEMPT):
                        # Stderr-specific guidance beats the generic
                        # rule (and never double-reports one line).
                        self.report(
                            path, idx, "naked-stderr",
                            "diagnostics must go through core/log "
                            "(log::diag mirrors stderr to the "
                            "structured sink)", line)
                    else:
                        self.report(
                            path, idx, "stdout-in-library",
                            "library code must not write to stdout/"
                            "stderr; take an std::ostream&", line)
            elif rel.startswith("tools/"):
                if STDERR_RE.search(code):
                    self.report(
                        path, idx, "naked-stderr",
                        "tool diagnostics must go through core/log "
                        "(log::diag mirrors stderr to the structured "
                        "sink)", line)

            if rel.startswith("src/router/"):
                # The include path is a string literal, so it is
                # blanked in the cleaned line; match the raw line.
                if FAULT_INJECTOR_RE.search(code):
                    self.report(
                        path, idx, "fault-hooks",
                        "router code must not reference FaultInjector; "
                        "go through router/fault_hooks.hh", line)
                if FAULT_INCLUDE_RE.search(line):
                    self.report(
                        path, idx, "fault-hooks",
                        "router code must not include net/fault.hh; "
                        "go through router/fault_hooks.hh", line)

            if reentrant and FILE_SCOPE_RE.match(code):
                if (not FILE_SCOPE_OK_RE.match(code)
                        and not self._is_function_decl(code)):
                    self.report(
                        path, idx, "file-scope-state",
                        "mutable file-scope state breaks re-entrancy "
                        "(parallel sweep workers share this)", line)

        if path.suffix == ".hh":
            self._check_guard(path, rel, lines, cleaned_lines)

    @staticmethod
    def _is_function_decl(code):
        """A '(' before any '=' or ';' means a function, not data."""
        stop = len(code)
        for ch in ("=", ";"):
            p = code.find(ch)
            if p != -1:
                stop = min(stop, p)
        return "(" in code[:stop]

    def _check_guard(self, path, rel, lines, cleaned_lines):
        for idx, line in enumerate(cleaned_lines, 1):
            if PRAGMA_ONCE_RE.match(line):
                self.report(
                    path, idx, "include-guard",
                    "#pragma once is forbidden; use an "
                    "ORION_..._HH guard", lines[idx - 1])

        parts = Path(rel).with_suffix("").parts
        if parts[0] == "src":
            parts = parts[1:]
        expected = "ORION_" + "_".join(
            re.sub(r"\W", "_", p).upper() for p in parts) + "_HH"

        ifndef = None
        ifndef_line = 0
        for idx, line in enumerate(cleaned_lines, 1):
            m = IFNDEF_RE.match(line)
            if m:
                ifndef, ifndef_line = m.group(1), idx
                break
        if ifndef is None:
            self.report(path, 1, "include-guard",
                        f"missing include guard {expected}", lines[0])
            return
        if ifndef != expected:
            self.report(
                path, ifndef_line, "include-guard",
                f"guard {ifndef} does not match path (expected "
                f"{expected})", lines[ifndef_line - 1])
            return
        define_ok = any(
            DEFINE_RE.match(l) and DEFINE_RE.match(l).group(1) == expected
            for l in cleaned_lines[ifndef_line - 1:ifndef_line + 2])
        if not define_ok:
            self.report(
                path, ifndef_line, "include-guard",
                f"#ifndef {expected} has no matching #define",
                lines[ifndef_line - 1])

    def check_suppressions(self):
        """Flag lint-allow comments that no longer earn their keep.

        Emitted directly (never themselves suppressible): a stale
        suppression silently re-arms the rule it once excused, so it
        must be deleted, not excused again.
        """
        for rel, lineno, rule in self.suppression_sites:
            if rule not in KNOWN_RULES:
                self.findings.append(
                    f"{rel}:{lineno}: [unused-suppression] lint-allow "
                    f"names unknown rule '{rule}'")
            elif (rel, lineno) not in self.used_suppressions:
                self.findings.append(
                    f"{rel}:{lineno}: [unused-suppression] stale "
                    f"suppression: no '{rule}' finding is triggered "
                    "here anymore; delete the lint-allow comment")

    def run(self):
        files = []
        for d in SCAN_DIRS:
            base = self.root / d
            if not base.is_dir():
                continue
            files.extend(
                p for p in sorted(base.rglob("*"))
                if p.suffix in CXX_SUFFIXES
                and not p.relative_to(self.root).as_posix().startswith(
                    SKIP_PREFIXES))
        for f in files:
            self.lint_file(f)
        self.check_suppressions()
        return files


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repository root (default: parent of this "
                         "script's directory)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule names and exit")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule in KNOWN_RULES:
            print(rule)
        return 0

    root = Path(args.root).resolve() if args.root else \
        Path(__file__).resolve().parent.parent
    if not (root / "src").is_dir():
        print(f"orion_lint: no src/ under {root}", file=sys.stderr)
        return 2

    linter = Linter(root)
    files = linter.run()
    for finding in linter.findings:
        print(finding)
    status = 1 if linter.findings else 0
    print(f"orion_lint: {len(files)} files scanned, "
          f"{len(linter.findings)} finding(s)")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
