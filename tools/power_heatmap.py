#!/usr/bin/env python3
"""Spatial power map from an Orion metric time series.

Reads the long-format CSV exported by --metrics-out (or a sweep's
--metrics-dir point file), extracts the per-(node, component-class)
energy counters (metrics named "power.<node>.<class>.energy_j"), and
renders the spatial power map of paper Figure 6:

  - an ASCII heatmap of total per-node energy over the measurement
    window, laid out on the network's grid (--dims XxY), and
  - optionally a per-node-per-window matrix CSV (--matrix-out) whose
    rows are sampling windows and columns are nodes — the raw data
    behind an animated/spatio-temporal view,
  - optionally a PNG (--png-out) when matplotlib is available.

Typical two-command recipe (see docs/EXPERIMENTS.md):

  orion_sim --preset vc16 --pattern broadcast --rate 0.02 \\
            --metrics-out bcast.csv
  power_heatmap.py bcast.csv --dims 4x4

Exit status: 0 on success, 1 on bad input, 2 on usage errors.
"""

import argparse
import csv
import re
import sys

POWER_RE = re.compile(r"^power\.(\d+)\.([a-z_]+)\.energy_j$")


def parse_args(argv):
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("metrics_csv", help="long-format metrics CSV "
                   "(from --metrics-out / --metrics-dir)")
    p.add_argument("--dims", default="4x4",
                   help="grid layout XxY (default 4x4; node id = "
                   "y*X + x, matching net::Topology)")
    p.add_argument("--component", default=None,
                   help="restrict to one component class "
                   "(buffer, crossbar, arbiter, link, central_buffer)")
    p.add_argument("--matrix-out", default=None,
                   help="write the per-window per-node energy matrix "
                   "CSV here")
    p.add_argument("--png-out", default=None,
                   help="render a PNG heatmap (needs matplotlib)")
    return p.parse_args(argv)


def load_energy(path, component):
    """Return ({node: total_energy}, {window: {node: energy}})."""
    totals = {}
    by_window = {}
    rows = 0
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        required = {"window", "metric", "value"}
        if reader.fieldnames is None or not required.issubset(
                reader.fieldnames):
            raise ValueError(
                f"{path}: expected columns {sorted(required)}; "
                f"got {reader.fieldnames}")
        for row in reader:
            m = POWER_RE.match(row["metric"])
            if not m:
                continue
            node, cls = int(m.group(1)), m.group(2)
            if component is not None and cls != component:
                continue
            window = int(row["window"])
            value = float(row["value"])
            totals[node] = totals.get(node, 0.0) + value
            by_window.setdefault(window, {})
            by_window[window][node] = \
                by_window[window].get(node, 0.0) + value
            rows += 1
    if rows == 0:
        raise ValueError(
            f"{path}: no power.<node>.<class>.energy_j rows found "
            "(was the run sampled with --metrics-out?)")
    return totals, by_window


def parse_dims(spec):
    m = re.match(r"^(\d+)x(\d+)$", spec)
    if not m:
        raise ValueError(f"--dims wants XxY, got '{spec}'")
    return int(m.group(1)), int(m.group(2))


def ascii_heatmap(totals, x_dim, y_dim):
    """Render the per-node totals as a y-down grid with a scale."""
    peak = max(totals.values())
    shades = " .:-=+*#%@"
    lines = []
    lines.append(f"per-node energy (J), peak {peak:.3e}")
    # y printed top-down so the origin is bottom-left, like Figure 6.
    for y in range(y_dim - 1, -1, -1):
        cells = []
        glyphs = []
        for x in range(x_dim):
            e = totals.get(y * x_dim + x, 0.0)
            cells.append(f"{e:9.3e}")
            level = 0 if peak <= 0 else int(
                (len(shades) - 1) * e / peak)
            glyphs.append(shades[level] * 2)
        lines.append("  " + " ".join(cells) + "   |" +
                     "".join(glyphs) + "|")
    return "\n".join(lines)


def write_matrix(by_window, num_nodes, path):
    with open(path, "w", newline="") as f:
        w = csv.writer(f)
        w.writerow(["window"] + [f"node_{n}" for n in range(num_nodes)])
        for window in sorted(by_window):
            row = by_window[window]
            w.writerow([window] +
                       [f"{row.get(n, 0.0):.9g}"
                        for n in range(num_nodes)])


def write_png(totals, x_dim, y_dim, path):
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("power_heatmap: matplotlib not available, skipping "
              f"{path}", file=sys.stderr)
        return
    grid = [[totals.get(y * x_dim + x, 0.0) for x in range(x_dim)]
            for y in range(y_dim)]
    fig, ax = plt.subplots()
    im = ax.imshow(grid, origin="lower", cmap="inferno")
    ax.set_xlabel("x")
    ax.set_ylabel("y")
    ax.set_title("per-node energy (J)")
    fig.colorbar(im, ax=ax, label="J")
    fig.savefig(path, dpi=150, bbox_inches="tight")
    print(f"wrote {path}")


def main(argv):
    args = parse_args(argv)
    try:
        x_dim, y_dim = parse_dims(args.dims)
        totals, by_window = load_energy(args.metrics_csv,
                                        args.component)
    except (OSError, ValueError) as e:
        print(f"power_heatmap: {e}", file=sys.stderr)
        return 1

    num_nodes = x_dim * y_dim
    out_of_range = [n for n in totals if n >= num_nodes]
    if out_of_range:
        print(f"power_heatmap: node ids {sorted(out_of_range)} exceed "
              f"--dims {args.dims} ({num_nodes} nodes)",
              file=sys.stderr)
        return 1

    print(ascii_heatmap(totals, x_dim, y_dim))
    total = sum(totals.values())
    print(f"total: {total:.3e} J over {len(by_window)} windows")

    if args.matrix_out:
        write_matrix(by_window, num_nodes, args.matrix_out)
        print(f"wrote {args.matrix_out}")
    if args.png_out:
        write_png(totals, x_dim, y_dim, args.png_out)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:
        # Output piped into head/less that exited early; not an error.
        sys.exit(0)
