/**
 * @file
 * orion_served: the resident sweep service (docs/ROBUSTNESS.md,
 * "Resident service"; recipes in EXPERIMENTS.md).
 *
 * A long-running batch daemon speaking newline-delimited JSON over a
 * Unix-domain socket (core/proto.hh). Jobs are orion_sim-style
 * configurations plus a rate grid; results are checkpoint-entry
 * lines whose hexfloat doubles make them byte-reproducible. With
 * --cache-dir every computed point lands in a persistent
 * content-hashed cache (core/cache.hh) that survives SIGKILL and
 * serves repeated points without running the simulator.
 *
 * Lifecycle: SIGTERM/SIGINT stops accepting connections, cancels
 * queued jobs, drains in-flight ones, persists the cache manifest
 * and writes a shutdown manifest. SIGKILL loses none of the
 * acknowledged cache inserts (append + fsync per entry).
 *
 * Exit codes: 0 clean shutdown, 1 usage or socket setup failure.
 */
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/cache.hh"
#include "core/cancel.hh"
#include "core/cli.hh"
#include "core/log.hh"
#include "core/manifest.hh"
#include "core/proto.hh"
#include "core/server.hh"

namespace {

using orion::core::CancelToken;
using orion::core::ResultCache;
using orion::core::Server;

constexpr std::size_t kMaxRequestBytes = 1 << 20;

struct DaemonOptions
{
    std::string socketPath;
    std::string cacheDir;
    std::uint64_t cacheMaxEntries = 4096;
    std::uint64_t cacheSegmentEntries = 256;
    unsigned workers = 1;
    std::size_t queueMax = 16;
    double defaultTimeoutSeconds = 0.0;
    unsigned retries = 2;
    unsigned backoffMs = 0;
    bool isolate = false;
    std::string isolateExe;
    std::string manifestOut;
    std::string logOut;
    std::string logLevel;
    bool helpRequested = false;
};

const char* kUsage =
    "usage: orion_served --socket PATH [options]\n"
    "\n"
    "  --socket PATH             Unix-domain socket to listen on\n"
    "  --cache-dir DIR           persistent result cache directory\n"
    "  --cache-max-entries N     LRU eviction bound (default 4096)\n"
    "  --cache-segment-entries N segment rotation size (default 256)\n"
    "  --workers N               worker threads (default 1)\n"
    "  --queue-max N             admission high-water mark "
    "(default 16)\n"
    "  --timeout SECONDS         default per-job deadline "
    "(default none)\n"
    "  --retries N               per-point attempts (default 2)\n"
    "  --backoff-ms N            sleep between attempts (default 0)\n"
    "  --isolate EXE             run each point in a forked orion_sim\n"
    "  --manifest-out FILE       shutdown manifest (default\n"
    "                            <socket>.manifest.json)\n"
    "  --log-out FILE --log-level LVL   structured JSON log sink\n";

[[noreturn]] void
usageError(const std::string& what)
{
    throw std::invalid_argument("orion_served: " + what +
                                " (--help for usage)");
}

DaemonOptions
parseDaemonArgs(const std::vector<std::string>& args)
{
    DaemonOptions o;
    const auto need = [&](std::size_t i) -> const std::string& {
        if (i + 1 >= args.size())
            usageError("'" + args[i] + "' needs a value");
        return args[i + 1];
    };
    const auto needU64 = [&](std::size_t i) {
        const std::string& v = need(i);
        char* end = nullptr;
        const unsigned long long n =
            std::strtoull(v.c_str(), &end, 10);
        if (end != v.c_str() + v.size() || v.empty() ||
            v.front() == '-')
            usageError("'" + args[i] + "' needs an unsigned integer");
        return static_cast<std::uint64_t>(n);
    };
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& a = args[i];
        if (a == "--help" || a == "-h") {
            o.helpRequested = true;
        } else if (a == "--socket") {
            o.socketPath = need(i); ++i;
        } else if (a == "--cache-dir") {
            o.cacheDir = need(i); ++i;
        } else if (a == "--cache-max-entries") {
            o.cacheMaxEntries = needU64(i); ++i;
        } else if (a == "--cache-segment-entries") {
            o.cacheSegmentEntries = needU64(i); ++i;
        } else if (a == "--workers") {
            o.workers = static_cast<unsigned>(needU64(i)); ++i;
        } else if (a == "--queue-max") {
            o.queueMax = static_cast<std::size_t>(needU64(i)); ++i;
        } else if (a == "--timeout") {
            const std::string& v = need(i); ++i;
            char* end = nullptr;
            o.defaultTimeoutSeconds = std::strtod(v.c_str(), &end);
            if (end != v.c_str() + v.size() ||
                !(o.defaultTimeoutSeconds >= 0.0))
                usageError("--timeout needs seconds >= 0");
        } else if (a == "--retries") {
            o.retries = static_cast<unsigned>(needU64(i)); ++i;
        } else if (a == "--backoff-ms") {
            o.backoffMs = static_cast<unsigned>(needU64(i)); ++i;
        } else if (a == "--isolate") {
            o.isolate = true;
            o.isolateExe = need(i); ++i;
        } else if (a == "--manifest-out") {
            o.manifestOut = need(i); ++i;
        } else if (a == "--log-out") {
            o.logOut = need(i); ++i;
        } else if (a == "--log-level") {
            o.logLevel = need(i); ++i;
        } else {
            usageError("unknown option '" + a + "'");
        }
    }
    if (!o.helpRequested && o.socketPath.empty())
        usageError("--socket is required");
    if (o.manifestOut.empty() && !o.socketPath.empty())
        o.manifestOut = o.socketPath + ".manifest.json";
    if (o.cacheSegmentEntries == 0)
        usageError("--cache-segment-entries must be >= 1");
    return o;
}

/** Flags never forwarded to isolate-mode workers (observability
 * sinks would collide across workers; mirrors orion_sweep). */
std::vector<std::string>
stripWorkerFlags(const std::vector<std::string>& args)
{
    std::vector<std::string> out;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& a = args[i];
        if (a == "--log-out" || a == "--log-level" ||
            a == "--manifest-out" || a == "--report-out" ||
            a == "--metrics-out" || a == "--trace-out") {
            ++i; // skip the value too
            continue;
        }
        if (a == "--profile-phases")
            continue;
        out.push_back(a);
    }
    return out;
}

/** Read one request line (up to kMaxRequestBytes) from @p fd. */
bool
readRequestLine(int fd, std::string& out)
{
    out.clear();
    char buf[4096];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return !out.empty();
        out.append(buf, static_cast<std::size_t>(n));
        const std::size_t eol = out.find('\n');
        if (eol != std::string::npos) {
            out.resize(eol);
            return true;
        }
        if (out.size() > kMaxRequestBytes)
            return false;
    }
}

void
writeReplyLine(int fd, const std::string& reply)
{
    const std::string line = reply + "\n";
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n =
            ::write(fd, line.data() + off, line.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return; // client went away; nothing to salvage
        }
        off += static_cast<std::size_t>(n);
    }
}

std::string
okPrefix()
{
    return std::string("{\"schema\":") +
           orion::core::proto::jsonString(
               orion::core::proto::kSchema) +
           ",\"ok\":true";
}

std::string
serverStatsJson(const orion::core::ServerStats& s)
{
    std::ostringstream out;
    out << "{\"submitted\":" << s.submitted
        << ",\"rejected_queue_full\":" << s.rejectedQueueFull
        << ",\"completed\":" << s.completed
        << ",\"failed\":" << s.failed
        << ",\"cancelled\":" << s.cancelled
        << ",\"queue_depth\":" << s.queueDepth
        << ",\"running\":" << s.running
        << ",\"points_computed\":" << s.pointsComputed
        << ",\"points_from_cache\":" << s.pointsFromCache << "}";
    return out.str();
}

std::string
handleSubmit(const orion::core::proto::Request& req, Server& server,
             const DaemonOptions& dopts)
{
    namespace proto = orion::core::proto;
    orion::core::JobSpec spec;
    try {
        const orion::cli::Options o = orion::cli::parse(req.args);
        if (o.helpRequested) {
            return proto::errorReply(
                "bad_request", "--help is not a submittable job");
        }
        spec.network = o.network;
        spec.traffic = o.traffic;
        spec.sim = o.sim;
        if (req.rates.empty()) {
            spec.rates = {o.traffic.injectionRate};
        } else {
            spec.rates = orion::cli::parseRateSpec(req.rates);
        }
        // Every point of the grid must validate, not just the base
        // configuration cli::parse checked (a NaN can hide in the
        // rates spec as easily as in --rate).
        for (const double rate : spec.rates) {
            orion::TrafficConfig t = o.traffic;
            t.injectionRate = rate;
            orion::validateTraffic(o.network, t);
        }
    } catch (const std::invalid_argument& e) {
        return proto::errorReply("invalid_config", e.what());
    }
    spec.timeoutSeconds = req.timeoutSeconds;
    if (dopts.isolate)
        spec.argv = stripWorkerFlags(req.args);

    std::string code;
    std::string message;
    const std::uint64_t id = server.submit(spec, code, message);
    if (id == 0)
        return proto::errorReply(code, message);
    return okPrefix() + ",\"job\":" + std::to_string(id) +
           ",\"state\":\"queued\"}";
}

std::string
handleRequest(const std::string& line, Server& server,
              ResultCache* cache, const DaemonOptions& dopts)
{
    namespace proto = orion::core::proto;
    proto::Request req;
    try {
        req = proto::parseRequest(line);
    } catch (const proto::ProtoError& e) {
        return proto::errorReply(e.code(), e.what());
    }

    if (req.verb == "submit")
        return handleSubmit(req, server, dopts);

    if (req.verb == "stats") {
        std::string out = okPrefix();
        out += ",\"server\":" + serverStatsJson(server.stats());
        if (cache != nullptr)
            out += ",\"cache\":" + cache->manifestJson();
        out += "}";
        return out;
    }

    orion::core::JobStatus js;
    if (!server.status(req.job, js)) {
        return proto::errorReply(
            "unknown_job", "no job " + std::to_string(req.job));
    }
    if (req.verb == "status") {
        std::string out = okPrefix();
        out += ",\"job\":" + std::to_string(js.id);
        out += ",\"state\":\"";
        out += orion::core::jobStateName(js.state);
        out += "\",\"done\":" + std::to_string(js.pointsDone);
        out += ",\"total\":" + std::to_string(js.pointsTotal);
        out += ",\"cache_hits\":" + std::to_string(js.cacheHits);
        if (!js.error.empty())
            out += ",\"message\":" + proto::jsonString(js.error);
        out += "}";
        return out;
    }
    if (req.verb == "result") {
        if (js.state == orion::core::JobState::Done) {
            std::string out = okPrefix();
            out += ",\"job\":" + std::to_string(js.id);
            out += ",\"state\":\"done\",\"cache_hits\":" +
                   std::to_string(js.cacheHits);
            out += ",\"result\":" + proto::jsonString(js.resultText);
            out += "}";
            return out;
        }
        if (js.state == orion::core::JobState::Failed)
            return proto::errorReply("job_failed", js.error);
        if (js.state == orion::core::JobState::Cancelled)
            return proto::errorReply("cancelled", js.error);
        return proto::errorReply(
            "not_ready", std::string("job is ") +
                             orion::core::jobStateName(js.state));
    }
    if (req.verb == "cancel") {
        server.cancelJob(req.job);
        return okPrefix() + ",\"job\":" + std::to_string(req.job) +
               "}";
    }
    return proto::errorReply("bad_request",
                             "unhandled verb '" + req.verb + "'");
}

int
listenOn(const std::string& path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path)
        usageError("socket path too long: '" + path + "'");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    ::unlink(path.c_str()); // stale socket from a SIGKILLed daemon
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        usageError("cannot create socket");
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(fd, 64) != 0) {
        ::close(fd);
        usageError("cannot bind/listen on '" + path + "'");
    }
    return fd;
}

std::string
shutdownManifestJson(Server& server, ResultCache* cache, int sig)
{
    namespace proto = orion::core::proto;
    std::string out = "{\"schema\":\"orion-served-shutdown-v1\"";
    out += ",\"signal\":" + std::to_string(sig);
    out += ",\"server\":" + serverStatsJson(server.stats());
    if (cache != nullptr)
        out += ",\"cache\":" + cache->manifestJson();
    out += "}\n";
    return out;
}

int
daemonMain(const DaemonOptions& dopts)
{
    using orion::core::log::Level;
    namespace log = orion::core::log;

    std::unique_ptr<ResultCache> cache;
    if (!dopts.cacheDir.empty()) {
        orion::core::CacheOptions copts;
        copts.dir = dopts.cacheDir;
        copts.maxEntries = dopts.cacheMaxEntries;
        copts.segmentEntries = dopts.cacheSegmentEntries;
        cache = std::make_unique<ResultCache>(copts);
        const orion::core::CacheStats cs = cache->stats();
        log::diag(Level::Info, "served.cache_loaded",
                  log::strf("orion_served: cache '%s': %llu entries, "
                            "%llu segments, %llu quarantined\n",
                            dopts.cacheDir.c_str(),
                            static_cast<unsigned long long>(
                                cs.entries),
                            static_cast<unsigned long long>(
                                cs.segments),
                            static_cast<unsigned long long>(
                                cs.quarantined)),
                  {log::u64("entries", cs.entries),
                   log::u64("segments", cs.segments),
                   log::u64("quarantined", cs.quarantined)});
    }

    orion::core::ServerOptions sopts;
    sopts.workers = dopts.workers;
    sopts.queueMax = dopts.queueMax;
    sopts.retry.maxAttempts = dopts.retries;
    sopts.retry.backoffMs = dopts.backoffMs;
    sopts.defaultTimeoutSeconds = dopts.defaultTimeoutSeconds;
    sopts.isolate = dopts.isolate;
    sopts.isolateExe = dopts.isolateExe;
    sopts.cache = cache.get();
    Server server(sopts);

    const int fd = listenOn(dopts.socketPath);
    log::diag(Level::Info, "served.listening",
              "orion_served: listening on " + dopts.socketPath +
                  "\n",
              {log::str("socket", dopts.socketPath),
               log::u64("queue_max", dopts.queueMax),
               log::u64("workers", dopts.workers)});

    const CancelToken& stop = orion::core::interruptToken();
    while (!stop.cancelled()) {
        pollfd p{};
        p.fd = fd;
        p.events = POLLIN;
        const int r = ::poll(&p, 1, 200);
        if (r <= 0)
            continue; // timeout or EINTR: recheck the stop token
        const int conn = ::accept(fd, nullptr, nullptr);
        if (conn < 0)
            continue;
        std::string line;
        if (readRequestLine(conn, line)) {
            writeReplyLine(
                conn, handleRequest(line, server, cache.get(),
                                    dopts));
        }
        ::close(conn);
    }

    // Graceful drain: stop accepting, finish in-flight jobs, persist
    // what a restart needs.
    const int sig = orion::core::interruptSignal();
    log::diag(Level::Info, "served.draining",
              "orion_served: draining (signal " +
                  std::to_string(sig) + ")\n",
              {log::u64("signal", static_cast<std::uint64_t>(
                                      sig < 0 ? 0 : sig))});
    ::close(fd);
    ::unlink(dopts.socketPath.c_str());
    server.drain();
    if (cache != nullptr)
        cache->writeManifest();
    if (!dopts.manifestOut.empty()) {
        orion::core::writeFileAtomic(
            dopts.manifestOut,
            shutdownManifestJson(server, cache.get(), sig));
    }
    log::diag(Level::Info, "served.stopped",
              "orion_served: stopped\n", {});
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    using orion::core::log::Level;
    namespace log = orion::core::log;

    std::vector<std::string> args(argv + 1, argv + argc);
    try {
        const DaemonOptions dopts = parseDaemonArgs(args);
        if (dopts.helpRequested) {
            std::cout << kUsage;
            return 0;
        }
        log::configureFromEnv();
        if (!dopts.logOut.empty() || !dopts.logLevel.empty()) {
            Level level = Level::Info;
            if (!dopts.logLevel.empty() &&
                !log::parseLevel(dopts.logLevel, level))
                usageError("bad --log-level '" + dopts.logLevel +
                           "'");
            log::configure(dopts.logOut, level);
        }
        std::signal(SIGPIPE, SIG_IGN);
        orion::core::installInterruptHandlers();
        return daemonMain(dopts);
    } catch (const std::exception& e) {
        log::diag(Level::Error, "served.fatal",
                  std::string(e.what()) + "\n", {});
        return 1;
    }
}
