#!/usr/bin/env python3
"""Project-aware static analysis for Orion's determinism and
concurrency contracts.

orion_lint.py catches line-local style violations; this tool checks
*structural* properties that gate the road to intra-simulation
parallelism (ROADMAP item 1b). The reference engine is a dependency-
free tokenizer over the source tree, so the rules run everywhere the
repo builds; when libclang python bindings are installed
(``--engine libclang``, used by CI's analysis job) the `unguarded`
rule is re-derived from the real AST and cross-checked.

Rules:

  unordered-iteration  iterating a std::unordered_* container is
                       forbidden in src/: iteration order is
                       implementation-defined, and every consumer of a
                       walk (Report, CSV exports, forensics bundles)
                       must be bit-identical across runs and hosts.
                       Keyed lookup is fine; walks need an ordered
                       container or a sorted key snapshot.
  rng-sharing          inside a core::parallelFor worker lambda, a
                       sim::Rng must be (a) constructed in the lambda
                       body and (b) seeded through sim::deriveSeed, so
                       every sweep point owns an independent stream.
                       Referencing an Rng declared outside the lambda
                       shares one stream across workers and makes
                       results depend on --jobs.
  fp-accum-drift       the ordered list of `+=` accumulation
                       statements in each src/power file is
                       fingerprinted in tools/analyze_baseline.json.
                       Reordering floating-point accumulation changes
                       the bits of every energy figure; a changed
                       fingerprint means golden reports must be
                       re-verified before --update-baselines.
  raw-subscribe        EventBus::subscribeRaw may only take a
                       captureless lambda or a file-static /
                       anonymous-namespace trampoline: hot-path
                       dispatch must stay an indirect call with a
                       void* context, never a capturing closure.
  unguarded            a class holding a core::Mutex or core::Role
                       capability must annotate every mutable data
                       member with ORION_GUARDED_BY (or carry an
                       explicit, justified suppression). This is what
                       makes "remove one annotation" a CI failure even
                       on GCC-only hosts where the attributes are
                       no-ops.
  signal-safety        functions reachable from an installed signal
                       handler (sa_handler assignments and
                       std::signal registrations) may only write
                       `volatile std::sig_atomic_t` variables, call
                       lock-free atomic operations, or call the small
                       POSIX async-signal-safe set. Anything else —
                       plain global writes, printf, allocation,
                       locks — is a finding: a handler interrupting
                       the simulation mid-cycle must not corrupt
                       state it shares with it.
  socket-under-lock    in src/core/server* (the orion_served job
                       engine), no blocking socket/descriptor I/O
                       syscall (::read, ::write, ::send, ::recv,
                       ::accept, ::connect, ::poll, ::select, ...)
                       may run while a core::LockGuard is live: a
                       slow peer would stall every worker touching
                       the server mutex. I/O belongs outside the
                       critical section; the lock protects queue and
                       job-table state only.
  unused-suppression   an `// analyze-allow:` comment that no longer
                       suppresses anything, names an unknown rule, or
                       lacks a `-- justification` is itself a finding,
                       so suppressions cannot rot.

A finding is suppressed by `// analyze-allow: <rule> -- <why>` on any
line of the offending statement. Exit status: 0 clean, 1 findings,
2 usage error.

Usage: orion_analyze.py --root DIR [--json FILE] [--rules LIST]
                        [--engine auto|text|libclang]
                        [--list-rules] [--update-baselines]
"""

import argparse
import bisect
import hashlib
import json
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from orion_lint import strip_comments_and_strings  # noqa: E402

RULES = (
    "unordered-iteration",
    "rng-sharing",
    "fp-accum-drift",
    "raw-subscribe",
    "unguarded",
    "signal-safety",
    "socket-under-lock",
    "unused-suppression",
)

BASELINE_REL = "tools/analyze_baseline.json"

ALLOW_RE = re.compile(r"//\s*analyze-allow:\s*([\w-]+)(?:\s*--\s*(\S.*))?")

UNORDERED_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^();]*:\s*([A-Za-z_]\w*)\s*\)")
ITERATOR_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*\.\s*c?r?(?:begin|end)\s*\(")
PARFOR_RE = re.compile(r"\bparallelFor\s*\(")
RNG_DECL_RE = re.compile(r"\b(?:sim\s*::\s*)?Rng\s+([A-Za-z_]\w*)\s*[;({=]")
SUBSCRIBE_RE = re.compile(r"\bsubscribeRaw\s*\(")
HANDLER_ASSIGN_RE = re.compile(
    r"\bsa_handler\s*=\s*&?\s*([A-Za-z_]\w*)")
HANDLER_SIGNAL_RE = re.compile(
    r"\bsignal\s*\(\s*SIG\w+\s*,\s*&?\s*([A-Za-z_]\w*)\s*\)")
CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
WRITE_RE = re.compile(
    r"(?:(?:\+\+|--)\s*([A-Za-z_]\w*)"
    r"|([A-Za-z_]\w*)\s*(?:\+\+|--|(?:<<|>>|[+\-*/%&|^])?=(?!=)))")
SIGATOMIC_DECL_RE = re.compile(
    r"\bvolatile\s+(?:std\s*::\s*)?sig_atomic_t\s+([A-Za-z_]\w*)")
ATOMIC_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?atomic\s*<[^;>]*>\s+([A-Za-z_]\w*)")
LOCKGUARD_RE = re.compile(
    r"\b(?:core\s*::\s*)?LockGuard\s+[A-Za-z_]\w*\s*[({]")
SOCKET_CALL_RE = re.compile(
    r"(?<![\w:])::\s*(read|write|send|recv|sendto|recvfrom|sendmsg"
    r"|recvmsg|accept|accept4|connect|poll|select|pselect)\s*\(")
CLASS_RE = re.compile(r"\b(class|struct)\b")
ACCESS_RE = re.compile(r"\b(?:public|protected|private)\s*:(?!:)")
ANNOTATION_RE = re.compile(r"\bORION_[A-Z_]+\b")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")

OPEN_TO_CLOSE = {"(": ")", "[": "]", "{": "}", "<": ">"}


def match_delim(text, open_pos):
    """Index of the delimiter matching text[open_pos], or -1."""
    opener = text[open_pos]
    closer = OPEN_TO_CLOSE[opener]
    depth = 0
    for i in range(open_pos, len(text)):
        c = text[i]
        if c == opener:
            depth += 1
        elif c == closer:
            depth -= 1
            if depth == 0:
                return i
    return -1


def split_top_commas(text):
    """Split on commas at depth 0 of (), [], {} and <> nesting."""
    parts = []
    depth = 0
    last = 0
    for i, c in enumerate(text):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "," and depth == 0:
            parts.append(text[last:i])
            last = i + 1
    parts.append(text[last:])
    return parts


def strip_annotations(text):
    """Remove ORION_*(...) attribute macros (and bare ORION_* words)."""
    out = text
    while True:
        m = ANNOTATION_RE.search(out)
        if m is None:
            return out
        end = m.end()
        rest = out[end:]
        stripped = rest.lstrip()
        if stripped.startswith("("):
            p = end + (len(rest) - len(stripped))
            close = match_delim(out, p)
            end = close + 1 if close != -1 else len(out)
        out = out[: m.start()] + " " + out[end:]


class SourceFile:
    def __init__(self, path, root):
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        raw = path.read_text(encoding="utf-8")
        self.raw_lines = raw.splitlines()
        cleaned = []
        in_block = False
        for line in self.raw_lines:
            c, in_block = strip_comments_and_strings(line, in_block)
            cleaned.append(c)
        self.text = "\n".join(cleaned)
        self.line_starts = [0]
        for line in cleaned[:-1]:
            self.line_starts.append(self.line_starts[-1] + len(line) + 1)

    def line_of(self, offset):
        return bisect.bisect_right(self.line_starts, offset)


class Analyzer:
    def __init__(self, root, rules):
        self.root = root
        self.rules = rules
        self.findings = []
        self.files = []
        # (rel, lineno) of analyze-allow comments that suppressed a
        # finding; compared against all sites for unused-suppression.
        self.used_suppressions = set()
        self.suppression_sites = []  # (rel, lineno, rule, why)

    # -- infrastructure ------------------------------------------------

    def load(self):
        src = self.root / "src"
        for path in sorted(src.rglob("*")):
            if path.suffix in (".cc", ".hh"):
                self.files.append(SourceFile(path, self.root))
        for f in self.files:
            for lineno, raw in enumerate(f.raw_lines, 1):
                m = ALLOW_RE.search(raw)
                if m:
                    self.suppression_sites.append(
                        (f.rel, lineno, m.group(1), m.group(2)))

    def report(self, f, line, rule, message, span=None):
        """Record a finding unless a suppression covers its span."""
        for lineno in span if span else [line]:
            if lineno < 1 or lineno > len(f.raw_lines):
                continue
            m = ALLOW_RE.search(f.raw_lines[lineno - 1])
            if m and m.group(1) == rule:
                self.used_suppressions.add((f.rel, lineno))
                return
        self.findings.append(
            {"file": f.rel, "line": line, "rule": rule,
             "message": message})

    def run(self):
        self.load()
        dispatch = {
            "unordered-iteration": self.check_unordered,
            "rng-sharing": self.check_rng,
            "fp-accum-drift": self.check_fp_accum,
            "raw-subscribe": self.check_raw_subscribe,
            "unguarded": self.check_unguarded,
            "socket-under-lock": self.check_socket_under_lock,
        }
        for rule in self.rules:
            if rule in dispatch:
                for f in self.files:
                    dispatch[rule](f)
        if "signal-safety" in self.rules:
            self.check_signal_safety()
        if "unused-suppression" in self.rules:
            self.check_suppressions()
        self.findings.sort(
            key=lambda x: (x["file"], x["line"], x["rule"]))

    # -- unordered-iteration -------------------------------------------

    @staticmethod
    def unordered_names(f):
        names = set()
        for m in UNORDERED_RE.finditer(f.text):
            lt = f.text.index("<", m.start())
            gt = match_delim(f.text, lt)
            if gt == -1:
                continue
            rest = f.text[gt + 1:]
            if rest.lstrip().startswith("::"):
                continue  # nested type like ::iterator, not a variable
            nm = re.match(r"\s*&?\s*([A-Za-z_]\w*)", rest)
            if nm:
                names.add(nm.group(1))
        return names

    def check_unordered(self, f):
        names = self.unordered_names(f)
        if not names:
            return
        for pat, what in ((RANGE_FOR_RE, "range-for over"),
                          (ITERATOR_RE, "iterator walk of")):
            for m in pat.finditer(f.text):
                if m.group(1) not in names:
                    continue
                line = f.line_of(m.start())
                self.report(
                    f, line, "unordered-iteration",
                    f"{what} unordered container '{m.group(1)}': "
                    "iteration order is implementation-defined and "
                    "leaks into reports; use an ordered container or "
                    "sort a key snapshot first")

    # -- rng-sharing ---------------------------------------------------

    def check_rng(self, f):
        bodies = []
        for m in PARFOR_RE.finditer(f.text):
            open_p = f.text.index("(", m.start())
            close_p = match_delim(f.text, open_p)
            if close_p == -1:
                continue
            lam = f.text.find("[", open_p, close_p)
            if lam == -1:
                continue
            cap_close = match_delim(f.text, lam)
            if cap_close == -1:
                continue
            body_open = f.text.find("{", cap_close, close_p)
            if body_open == -1:
                continue
            body_close = match_delim(f.text, body_open)
            if body_close == -1:
                continue
            bodies.append((body_open, body_close))

            body = f.text[body_open:body_close]
            for d in RNG_DECL_RE.finditer(body):
                stmt_end = body.find(";", d.end() - 1)
                stmt = body[d.start():stmt_end if stmt_end != -1 else None]
                if "deriveSeed" not in stmt:
                    line = f.line_of(body_open + d.start())
                    self.report(
                        f, line, "rng-sharing",
                        f"Rng '{d.group(1)}' seeded inside a "
                        "parallelFor worker without sim::deriveSeed; "
                        "per-point streams must derive from the base "
                        "seed and the point indices")

        if not bodies:
            return
        for d in RNG_DECL_RE.finditer(f.text):
            if any(b <= d.start() < e for b, e in bodies):
                continue
            name = d.group(1)
            use_re = re.compile(rf"\b{re.escape(name)}\b")
            for b, e in bodies:
                u = use_re.search(f.text, b, e)
                if u:
                    self.report(
                        f, f.line_of(u.start()), "rng-sharing",
                        f"sim::Rng '{name}' declared outside the "
                        "parallelFor worker lambda is referenced "
                        "inside it; sweep workers must not share an "
                        "RNG stream (derive one per point with "
                        "sim::deriveSeed)")
                    break

    # -- fp-accum-drift ------------------------------------------------

    @staticmethod
    def accum_signature(f):
        """Ordered, whitespace-normalized `+=` statements in f."""
        stmts = []
        for m in re.finditer(r"\+=", f.text):
            start = max(f.text.rfind(";", 0, m.start()),
                        f.text.rfind("{", 0, m.start()),
                        f.text.rfind("}", 0, m.start())) + 1
            end = f.text.find(";", m.end())
            if end == -1:
                end = len(f.text)
            stmt = " ".join(f.text[start:end].split())
            stmts.append((stmt, f.line_of(m.start())))
        return stmts

    @staticmethod
    def digest(stmts):
        joined = "\n".join(s for s, _ in stmts)
        return hashlib.sha256(joined.encode("utf-8")).hexdigest()

    def load_baseline(self):
        path = self.root / BASELINE_REL
        if not path.is_file():
            return {}
        try:
            return json.loads(path.read_text()).get("fp-accum", {})
        except (json.JSONDecodeError, OSError):
            return None

    def check_fp_accum(self, f):
        if not f.rel.startswith("src/power/"):
            return
        baseline = self.load_baseline()
        if baseline is None:
            self.findings.append(
                {"file": BASELINE_REL, "line": 1,
                 "rule": "fp-accum-drift",
                 "message": "baseline file is unreadable; regenerate "
                            "with --update-baselines"})
            return
        stmts = self.accum_signature(f)
        if not stmts:
            return
        line = stmts[0][1]
        entry = baseline.get(f.rel)
        if entry is None:
            self.report(
                f, line, "fp-accum-drift",
                "floating-point accumulation chain has no registered "
                "fingerprint; verify golden reports, then run "
                "--update-baselines")
        elif (entry.get("count") != len(stmts)
              or entry.get("sha256") != self.digest(stmts)):
            self.report(
                f, line, "fp-accum-drift",
                f"accumulation chain changed (baseline "
                f"{entry.get('count')} statement(s), now {len(stmts)}): "
                "reordering FP accumulation changes energy bits; "
                "re-verify golden reports, then --update-baselines")

    def stale_baseline_entries(self):
        """fp-accum baseline entries whose file lost its accumulations."""
        baseline = self.load_baseline()
        if not baseline:
            return
        current = {f.rel for f in self.files
                   if f.rel.startswith("src/power/")
                   and self.accum_signature(f)}
        for rel in sorted(set(baseline) - current):
            self.findings.append(
                {"file": BASELINE_REL, "line": 1,
                 "rule": "fp-accum-drift",
                 "message": f"stale baseline entry for '{rel}' (file "
                            "gone or no accumulations left); run "
                            "--update-baselines"})

    def update_baselines(self):
        self.load()
        table = {}
        for f in self.files:
            if not f.rel.startswith("src/power/"):
                continue
            stmts = self.accum_signature(f)
            if stmts:
                table[f.rel] = {"count": len(stmts),
                                "sha256": self.digest(stmts)}
        path = self.root / BASELINE_REL
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps({"fp-accum": table}, indent=2, sort_keys=True)
            + "\n")
        return len(table)

    # -- raw-subscribe -------------------------------------------------

    @staticmethod
    def resolves_to_static(f, name):
        esc = re.escape(name)
        if re.search(rf"\bstatic\b[^;{{}}()]*\b{esc}\s*\(", f.text):
            return True
        for m in re.finditer(r"namespace\s*\{", f.text):
            open_b = f.text.index("{", m.start())
            close_b = match_delim(f.text, open_b)
            if close_b == -1:
                close_b = len(f.text)
            span = f.text[open_b:close_b]
            if (re.search(rf"(?m)^{esc}\s*\(", span)
                    or re.search(rf"\b{esc}\s*\(\s*void\s*\*", span)):
                return True
        return False

    def check_raw_subscribe(self, f):
        for m in SUBSCRIBE_RE.finditer(f.text):
            before = f.text[: m.start()].rstrip()
            if before.endswith("::"):
                continue  # qualified definition
            prev = re.search(r"([A-Za-z_]\w*)\s*$", before)
            if prev and prev.group(1) == "void":
                continue  # declaration
            open_p = f.text.index("(", m.start())
            close_p = match_delim(f.text, open_p)
            if close_p == -1:
                continue
            args = split_top_commas(f.text[open_p + 1: close_p])
            if len(args) < 3:
                continue
            fn = args[1].strip()
            line = f.line_of(m.start())
            if fn.startswith("[]"):
                continue
            if fn.startswith("["):
                self.report(
                    f, line, "raw-subscribe",
                    "capturing lambda passed to subscribeRaw; "
                    "hot-path dispatch takes a captureless lambda or "
                    "a static trampoline, with state through the "
                    "void* context argument")
                continue
            nm = re.fullmatch(r"&?\s*([A-Za-z_]\w*)", fn)
            if nm and self.resolves_to_static(f, nm.group(1)):
                continue
            self.report(
                f, line, "raw-subscribe",
                f"subscribeRaw handler '{fn}' does not resolve to a "
                "captureless lambda or a file-static / "
                "anonymous-namespace trampoline in this translation "
                "unit")

    # -- unguarded -----------------------------------------------------

    # Capability members must spell the qualified type: the tech layer
    # has an unrelated `Role` enum, so bare names are not trusted.
    CAPABILITY_RE = re.compile(r"\bcore\s*::\s*(?:Mutex|Role)\s")
    SYNC_TYPES = {"Mutex", "Role", "CondVar", "LockGuard", "RoleGuard"}
    SKIP_LEAD = {"friend", "using", "typedef", "enum", "static",
                 "template", "class", "struct", "union", "operator"}

    def parse_classes(self, f):
        """Yield (name, body_open, body_close) for class definitions."""
        for m in CLASS_RE.finditer(f.text):
            before = f.text[: m.start()].rstrip()
            if before.endswith(("<", ",")):
                continue  # template parameter, not a definition
            prev = re.search(r"([A-Za-z_]\w*)\s*$", before)
            if prev and prev.group(1) == "enum":
                continue
            stop = len(f.text)
            brace = f.text.find("{", m.end())
            semi = f.text.find(";", m.end())
            if brace == -1 or (semi != -1 and semi < brace):
                continue  # forward declaration
            header = f.text[m.end(): brace]
            header = re.split(r"(?<!:):(?!:)", header)[0]
            header = strip_annotations(header)
            header = re.sub(r"\bfinal\b", " ", header)
            idents = IDENT_RE.findall(header)
            name = idents[-1] if idents else "<anonymous>"
            close = match_delim(f.text, brace)
            if close == -1:
                close = stop
            yield name, brace + 1, close

    def class_members(self, f, body_open, body_close):
        """Yield (stmt_text, start_off, end_off) for data-member
        candidates at the class body's top level."""
        i = body_open
        buf_start = None
        buf = []
        while i < body_close:
            c = f.text[i]
            if c == "{":
                close = match_delim(f.text, i)
                if close == -1 or close > body_close:
                    return
                j = close + 1
                while j < body_close and f.text[j] in " \t\n":
                    j += 1
                if j < body_close and f.text[j] == ";":
                    # brace-or-equal initializer: member continues
                    i = close + 1
                    continue
                # function body or nested type: not a data member
                buf = []
                buf_start = None
                i = close + 1
                continue
            if c == ";":
                stmt = "".join(buf).strip()
                if stmt and buf_start is not None:
                    yield stmt, buf_start, i
                buf = []
                buf_start = None
                i += 1
                continue
            if not c.isspace() and buf_start is None:
                buf_start = i
            buf.append(c)
            i += 1

    def check_unguarded(self, f):
        for cls, body_open, body_close in self.parse_classes(f):
            members = []  # (name, tokens, has_guard, start, end, stmt)
            for stmt, start, end in self.class_members(
                    f, body_open, body_close):
                stmt = ACCESS_RE.sub(" ", stmt).strip()
                if not stmt:
                    continue
                has_guard = ("ORION_GUARDED_BY" in stmt
                             or "ORION_PT_GUARDED_BY" in stmt)
                bare = strip_annotations(stmt)
                bare = re.split(r"=", bare)[0].strip()
                tokens = IDENT_RE.findall(bare)
                if not tokens or tokens[0] in self.SKIP_LEAD:
                    continue
                if "(" in bare or "operator" in tokens:
                    continue  # function declaration
                members.append(
                    (tokens[-1], tokens, has_guard, start, end, stmt))

            capability = any(
                self.CAPABILITY_RE.search(t[5]) for t in members)
            if not capability:
                continue
            for name, tokens, has_guard, start, end, stmt in members:
                if set(tokens[:-1]) & self.SYNC_TYPES:
                    continue  # the capability / sync plumbing itself
                if tokens[0] == "const":
                    continue  # immutable after construction
                if has_guard:
                    continue
                span = list(range(f.line_of(start), f.line_of(end) + 1))
                self.report(
                    f, f.line_of(start), "unguarded",
                    f"mutable member '{name}' of capability-holding "
                    f"class '{cls}' lacks ORION_GUARDED_BY; annotate "
                    "it or add '// analyze-allow: unguarded -- "
                    "<reason>'", span=span)

    # -- socket-under-lock ---------------------------------------------

    def check_socket_under_lock(self, f):
        """Flag blocking socket/descriptor syscalls made while a
        core::LockGuard is live in the orion_served job engine.

        Scope is intentionally narrow — src/core/server* — because
        that is where one mutex serializes every worker: a peer that
        stops reading would wedge the whole daemon. The guard's
        critical section is approximated as "from the LockGuard
        declaration to the end of its enclosing brace block", which is
        exact for the RAII style the codebase uses (no early
        unlock())."""
        if not f.rel.startswith("src/core/server"):
            return
        for m in LOCKGUARD_RE.finditer(f.text):
            # End of the declaration (skip the constructor args).
            open_p = m.end() - 1
            close_p = match_delim(f.text, open_p)
            if close_p == -1:
                continue
            # Walk to the end of the enclosing block: the guard dies
            # when depth drops below the level it was declared at.
            depth = 0
            scope_end = len(f.text)
            for i in range(close_p + 1, len(f.text)):
                c = f.text[i]
                if c == "{":
                    depth += 1
                elif c == "}":
                    depth -= 1
                    if depth < 0:
                        scope_end = i
                        break
            for call in SOCKET_CALL_RE.finditer(
                    f.text, close_p + 1, scope_end):
                self.report(
                    f, f.line_of(call.start()), "socket-under-lock",
                    f"blocking I/O syscall '::{call.group(1)}' while "
                    "a core::LockGuard is live: a slow peer stalls "
                    "every worker sharing the server mutex; do the "
                    "I/O outside the critical section")

    # -- signal-safety -------------------------------------------------

    # Callees a signal handler may always reach: lock-free atomic
    # member operations plus the POSIX async-signal-safe calls the
    # codebase has a use for. Everything else must either be defined
    # in the scanned tree (and is then checked recursively) or is a
    # finding.
    SAFE_CALLS = {
        "store", "load", "exchange", "compare_exchange_strong",
        "compare_exchange_weak", "fetch_add", "fetch_sub", "fetch_and",
        "fetch_or", "fetch_xor", "test_and_set", "clear",
        "_exit", "_Exit", "abort", "raise", "kill", "write",
    }
    CONTROL_KEYWORDS = {
        "if", "for", "while", "switch", "return", "sizeof", "alignof",
        "catch", "assert", "static_assert", "decltype", "defined",
    }

    def function_defs(self, f):
        """Yield (name, body_open, body_close) for every function-like
        definition in f (free functions, methods, extern "C")."""
        for m in CALL_RE.finditer(f.text):
            name = m.group(1)
            if name in self.CONTROL_KEYWORDS:
                continue
            open_p = f.text.index("(", m.start())
            close_p = match_delim(f.text, open_p)
            if close_p == -1:
                continue
            j = close_p + 1
            while j < len(f.text):
                rest = f.text[j:]
                stripped = rest.lstrip()
                off = j + (len(rest) - len(stripped))
                spec = re.match(r"(?:const|noexcept|override|final)\b",
                                stripped)
                if spec:
                    j = off + spec.end()
                    continue
                if stripped.startswith("("):  # noexcept(...) operand
                    close2 = match_delim(f.text, off)
                    if close2 == -1:
                        break
                    j = close2 + 1
                    continue
                break
            rest = f.text[j:].lstrip()
            if not rest.startswith("{"):
                continue
            body_open = j + (len(f.text[j:]) - len(rest))
            body_close = match_delim(f.text, body_open)
            if body_close == -1:
                continue
            yield name, body_open, body_close

    def sig_atomic_names(self):
        names = set()
        for f in self.files:
            names.update(SIGATOMIC_DECL_RE.findall(f.text))
        return names

    def atomic_names(self):
        names = set()
        for f in self.files:
            names.update(ATOMIC_DECL_RE.findall(f.text))
        return names

    def scan_handler_body(self, f, body_open, body_close, sig_atomics,
                          atomics, defs, queue):
        body = f.text[body_open:body_close]

        for m in WRITE_RE.finditer(body):
            name = m.group(1) or m.group(2)
            start = m.start(1) if m.group(1) else m.start(2)
            lead_start = max(body.rfind(";", 0, start),
                             body.rfind("{", 0, start),
                             body.rfind("}", 0, start)) + 1
            lead = body[lead_start:start].strip()
            member_write = lead.endswith((".", "->"))
            if not member_write and IDENT_RE.findall(lead):
                continue  # declaration with initializer: a local
            if name in sig_atomics or name in atomics:
                continue
            # A reassigned local declared earlier in this body is
            # private to the handler's frame and always safe.
            if re.search(rf"\b[A-Za-z_]\w*[\s*&]+{re.escape(name)}"
                         rf"\s*[;=({{\[]", body[:start]):
                continue
            self.report(
                f, f.line_of(body_open + start), "signal-safety",
                f"write to '{name}' on a signal-handler path; handlers "
                "may only store to volatile std::sig_atomic_t "
                "variables or lock-free std::atomic objects")

        for m in CALL_RE.finditer(body):
            name = m.group(1)
            if name in self.CONTROL_KEYWORDS or name in self.SAFE_CALLS:
                continue
            if name in defs:
                queue.append(name)
                continue
            self.report(
                f, f.line_of(body_open + m.start()), "signal-safety",
                f"call to '{name}' on a signal-handler path; it is "
                "neither defined in this tree (so it cannot be "
                "verified) nor a known async-signal-safe operation")

    def check_signal_safety(self):
        defs = {}
        handlers = []
        for f in self.files:
            for name, b, e in self.function_defs(f):
                defs.setdefault(name, []).append((f, b, e))
            for pat in (HANDLER_ASSIGN_RE, HANDLER_SIGNAL_RE):
                for m in pat.finditer(f.text):
                    name = m.group(1)
                    if not name.startswith("SIG"):
                        handlers.append(name)
        if not handlers:
            return
        sig_atomics = self.sig_atomic_names()
        atomics = self.atomic_names()
        queue = handlers
        seen = set()
        while queue:
            name = queue.pop()
            if name in seen:
                continue
            seen.add(name)
            for f, b, e in defs.get(name, []):
                self.scan_handler_body(f, b, e, sig_atomics, atomics,
                                       defs, queue)

    # -- unused-suppression --------------------------------------------

    def check_suppressions(self):
        for rel, lineno, rule, why in self.suppression_sites:
            where = {"file": rel, "line": lineno,
                     "rule": "unused-suppression"}
            if rule not in RULES:
                self.findings.append(
                    {**where,
                     "message": f"analyze-allow names unknown rule "
                                f"'{rule}'"})
            elif not why or not why.strip():
                self.findings.append(
                    {**where,
                     "message": f"analyze-allow for '{rule}' has no "
                                "justification; write '// "
                                f"analyze-allow: {rule} -- <reason>'"})
            elif (rule in self.rules
                  and (rel, lineno) not in self.used_suppressions):
                self.findings.append(
                    {**where,
                     "message": f"stale suppression: no '{rule}' "
                                "finding is triggered here anymore; "
                                "delete the analyze-allow comment"})


def libclang_unguarded(root, analyzer):
    """Re-derive the `unguarded` rule from the clang AST.

    Returns a findings list, or None when libclang (or a usable
    compilation database) is unavailable — callers keep the text
    engine's results in that case.
    """
    try:
        from clang import cindex

        db_dir = None
        for cand in (root, root / "build", root / "build-clang"):
            if (cand / "compile_commands.json").is_file():
                db_dir = cand
                break
        if db_dir is None:
            return None
        db = cindex.CompilationDatabase.fromDirectory(str(db_dir))
        index = cindex.Index.create()

        findings = []
        seen = set()
        for cmd in db.getAllCompileCommands():
            args = [a for a in list(cmd.arguments)[1:]
                    if a not in (cmd.filename, "-c", "-o")]
            # Drop the object-file operand left after stripping -o.
            args = [a for a in args if not a.endswith(".o")]
            tu = index.parse(cmd.filename, args=args)
            for cur in tu.cursor.walk_preorder():
                if cur.kind not in (
                        cindex.CursorKind.CLASS_DECL,
                        cindex.CursorKind.STRUCT_DECL,
                        cindex.CursorKind.CLASS_TEMPLATE):
                    continue
                if not cur.is_definition():
                    continue
                loc = cur.location
                if loc.file is None:
                    continue
                path = Path(loc.file.name).resolve()
                try:
                    rel = path.relative_to(root).as_posix()
                except ValueError:
                    continue
                if not rel.startswith("src/"):
                    continue
                key = (rel, loc.line, cur.spelling)
                if key in seen:
                    continue
                seen.add(key)
                fields = [c for c in cur.get_children()
                          if c.kind == cindex.CursorKind.FIELD_DECL]
                cap = [fld for fld in fields
                       if re.search(r"(?:^|::)core::(?:Mutex|Role)$",
                                    fld.type.spelling)]
                if not cap:
                    continue
                src_file = next((sf for sf in analyzer.files
                                 if sf.rel == rel), None)
                for fld in fields:
                    tspell = fld.type.spelling
                    if re.search(r"\b(?:Mutex|Role|CondVar|LockGuard|"
                                 r"RoleGuard)\b", tspell):
                        continue
                    if tspell.startswith("const ") or "&" in tspell:
                        continue
                    toks = {t.spelling for t in fld.get_tokens()}
                    if "ORION_GUARDED_BY" in toks or \
                            "ORION_PT_GUARDED_BY" in toks:
                        continue
                    line = fld.location.line
                    if src_file is not None:
                        raw = src_file.raw_lines[line - 1] \
                            if line <= len(src_file.raw_lines) else ""
                        m = ALLOW_RE.search(raw)
                        if m and m.group(1) == "unguarded":
                            analyzer.used_suppressions.add((rel, line))
                            continue
                    findings.append(
                        {"file": rel, "line": line, "rule": "unguarded",
                         "message": f"[libclang] mutable field "
                                    f"'{fld.spelling}' of "
                                    f"capability-holding class "
                                    f"'{cur.spelling}' lacks "
                                    "ORION_GUARDED_BY"})
        return findings
    except Exception as exc:  # noqa: BLE001 — degrade, never crash CI
        print(f"orion_analyze: libclang engine unavailable "
              f"({type(exc).__name__}: {exc}); using text engine",
              file=sys.stderr)
        return None


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repository root (default: parent of this "
                         "script's directory)")
    ap.add_argument("--json", default=None, metavar="FILE",
                    help="write findings as JSON ('-' for stdout)")
    ap.add_argument("--rules", default=None,
                    help="comma-separated subset of rules to run")
    ap.add_argument("--engine", default="auto",
                    choices=("auto", "text", "libclang"),
                    help="analysis engine (libclang refines the "
                         "unguarded rule when python bindings exist)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule names and exit")
    ap.add_argument("--update-baselines", action="store_true",
                    help="rewrite tools/analyze_baseline.json from "
                         "the current tree and exit")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(rule)
        return 0

    root = Path(args.root).resolve() if args.root else \
        Path(__file__).resolve().parent.parent
    if not (root / "src").is_dir():
        print(f"orion_analyze: no src/ under {root}", file=sys.stderr)
        return 2

    rules = list(RULES)
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rules if r not in RULES]
        if unknown:
            print(f"orion_analyze: unknown rule(s): "
                  f"{', '.join(unknown)}", file=sys.stderr)
            return 2

    analyzer = Analyzer(root, rules)
    if args.update_baselines:
        n = analyzer.update_baselines()
        print(f"orion_analyze: fingerprinted {n} file(s) into "
              f"{BASELINE_REL}")
        return 0

    analyzer.run()
    if "fp-accum-drift" in rules:
        analyzer.stale_baseline_entries()

    engine = args.engine
    if engine in ("auto", "libclang"):
        clang_findings = libclang_unguarded(root, analyzer)
        if clang_findings is None:
            engine = "text"
        else:
            engine = "libclang"
            merged = [x for x in analyzer.findings
                      if x["rule"] != "unguarded"]
            merged.extend(clang_findings)
            analyzer.findings = merged
            if "unused-suppression" in rules:
                analyzer.findings = [
                    x for x in analyzer.findings
                    if x["rule"] != "unused-suppression"]
                analyzer.check_suppressions()
            analyzer.findings.sort(
                key=lambda x: (x["file"], x["line"], x["rule"]))

    for x in analyzer.findings:
        print(f"{x['file']}:{x['line']}: [{x['rule']}] {x['message']}")
    summary = (f"orion_analyze: {len(analyzer.files)} files scanned, "
               f"{len(analyzer.findings)} finding(s) [engine={engine}]")
    print(summary)

    if args.json:
        payload = json.dumps(
            {"engine": engine, "root": str(root),
             "files_scanned": len(analyzer.files),
             "findings": analyzer.findings}, indent=2) + "\n"
        if args.json == "-":
            sys.stdout.write(payload)
        else:
            Path(args.json).write_text(payload)

    return 1 if analyzer.findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
