/**
 * @file
 * orion_models — the standalone power-analysis tool the paper
 * promises in Section 3.2: evaluate any Table 2-4 component model for
 * arbitrary architectural and technology parameters, no simulator
 * involved. Examples:
 *
 *   orion_models buffer --flits 64 --bits 256
 *   orion_models crossbar --inputs 5 --outputs 5 --width 256 --mux-tree
 *   orion_models arbiter --requests 4 --kind rr
 *   orion_models link --length-um 3000 --width 256 --feature-um 0.07
 */

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "core/log.hh"
#include "core/model_cli.hh"

int
main(int argc, char** argv)
{
    namespace log = orion::core::log;
    std::vector<std::string> args(argv + 1, argv + argc);
    try {
        log::configureFromEnv();
        const std::string out = orion::cli::runModelQuery(args);
        std::fputs(out.c_str(), stdout);
        return 0;
    } catch (const std::exception& e) {
        log::diag(log::Level::Error, "models.error",
                  log::strf("%s\n", e.what()));
        return 1;
    }
}
