/**
 * @file
 * orion_submit: NDJSON client for orion_served (docs/ROBUSTNESS.md,
 * "Resident service"; recipes in EXPERIMENTS.md).
 *
 * usage: orion_submit --socket PATH VERB [options]
 *
 *   submit [--rates F:L:N] [--timeout SEC] [--wait] [--out FILE]
 *          [--poll-ms N] -- SIM_ARGS...
 *       Enqueue an orion_sim configuration (everything after `--` is
 *       orion_sim flags, forwarded verbatim). Prints the server's
 *       reply line; with --wait, polls until the job settles and then
 *       writes the result bytes (to --out or stdout).
 *   status JOB      print the job's status reply line
 *   result JOB [--out FILE]
 *       Fetch a finished job's result; the bytes are written raw so
 *       `cmp` against an orion_sim --report-out file is meaningful.
 *   cancel JOB      request cooperative cancellation
 *   stats           print the server/cache counters reply line
 *
 * Exit codes: 0 success, 1 usage or connection failure, 2 structured
 * rejection (queue_full, invalid_config, bad_request, unknown_job,
 * not_ready, draining), 3 the job itself failed or was cancelled.
 */
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/log.hh"
#include "core/proto.hh"

namespace {

namespace proto = orion::core::proto;
using orion::core::log::Level;
namespace log = orion::core::log;

constexpr std::size_t kMaxReplyBytes = 8 << 20;

[[noreturn]] void
usageError(const std::string& what)
{
    throw std::invalid_argument("orion_submit: " + what);
}

/** One request/reply exchange over a fresh connection. */
std::string
transact(const std::string& socket_path, const std::string& request)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof addr.sun_path)
        usageError("socket path too long: '" + socket_path + "'");
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        usageError("cannot create socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
        ::close(fd);
        usageError("cannot connect to '" + socket_path +
                   "' (is orion_served running?)");
    }

    const std::string line = request + "\n";
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n =
            ::write(fd, line.data() + off, line.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            usageError("write to '" + socket_path + "' failed");
        }
        off += static_cast<std::size_t>(n);
    }

    std::string reply;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            break;
        reply.append(buf, static_cast<std::size_t>(n));
        if (reply.find('\n') != std::string::npos ||
            reply.size() > kMaxReplyBytes)
            break;
    }
    ::close(fd);
    const std::size_t eol = reply.find('\n');
    if (eol != std::string::npos)
        reply.resize(eol);
    if (reply.empty())
        usageError("empty reply from '" + socket_path + "'");
    return reply;
}

/** Write result bytes raw (exact bytes matter for cmp). */
void
writeResult(const std::string& out_path, const std::string& text)
{
    if (out_path.empty()) {
        std::cout << text;
        return;
    }
    std::ofstream out(out_path, std::ios::binary);
    if (!out)
        usageError("cannot open '" + out_path + "'");
    out << text;
    if (!out.good())
        usageError("write to '" + out_path + "' failed");
}

struct Reply
{
    std::string line;
    proto::JsonValue root;
    bool ok = false;
    std::string error;   // structured code when !ok
    std::string message; // human-readable detail when !ok
};

Reply
roundTrip(const std::string& socket_path, const std::string& request)
{
    Reply r;
    r.line = transact(socket_path, request);
    r.root = proto::parseJson(r.line);
    const proto::JsonValue* ok = r.root.find("ok");
    r.ok = ok != nullptr &&
           ok->kind == proto::JsonValue::Kind::Boolean && ok->boolean;
    if (!r.ok) {
        if (const proto::JsonValue* e = r.root.find("error"))
            r.error = e->text;
        if (const proto::JsonValue* m = r.root.find("message"))
            r.message = m->text;
    }
    return r;
}

/** Exit code for a structured (ok:false) reply. */
int
rejectionExit(const Reply& r)
{
    log::diag(Level::Error, "submit.rejected",
              "orion_submit: " + r.error +
                  (r.message.empty() ? "" : ": " + r.message) + "\n",
              {log::str("error", r.error)});
    return r.error == "job_failed" || r.error == "cancelled" ? 3 : 2;
}

std::string
simpleRequest(const std::string& verb, std::uint64_t job)
{
    std::string out = "{\"schema\":";
    out += proto::jsonString(proto::kSchema);
    out += ",\"verb\":" + proto::jsonString(verb);
    if (job != 0)
        out += ",\"job\":" + std::to_string(job);
    out += "}";
    return out;
}

std::uint64_t
parseJobId(const std::string& text)
{
    char* end = nullptr;
    const unsigned long long id =
        std::strtoull(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size() || text.empty() || id == 0)
        usageError("bad job id '" + text + "'");
    return id;
}

/** Fetch the result of a settled job; returns the process exit
 * code. */
int
fetchResult(const std::string& socket_path, std::uint64_t job,
            const std::string& out_path)
{
    const Reply r =
        roundTrip(socket_path, simpleRequest("result", job));
    if (!r.ok)
        return rejectionExit(r);
    const proto::JsonValue* text = r.root.find("result");
    if (text == nullptr ||
        text->kind != proto::JsonValue::Kind::String)
        usageError("malformed result reply: " + r.line);
    writeResult(out_path, text->text);
    return 0;
}

int
waitForJob(const std::string& socket_path, std::uint64_t job,
           const std::string& out_path, unsigned poll_ms)
{
    for (;;) {
        const Reply r =
            roundTrip(socket_path, simpleRequest("status", job));
        if (!r.ok)
            return rejectionExit(r);
        const proto::JsonValue* state = r.root.find("state");
        if (state == nullptr ||
            state->kind != proto::JsonValue::Kind::String)
            usageError("malformed status reply: " + r.line);
        if (state->text == "done")
            return fetchResult(socket_path, job, out_path);
        if (state->text == "failed" || state->text == "cancelled") {
            // The result verb carries the structured reason.
            const Reply res =
                roundTrip(socket_path, simpleRequest("result", job));
            return res.ok ? 0 : rejectionExit(res);
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(poll_ms));
    }
}

int
submitMain(const std::string& socket_path,
           const std::vector<std::string>& args)
{
    std::string rates;
    double timeout = -1.0;
    bool wait = false;
    std::string outPath;
    unsigned pollMs = 200;
    std::vector<std::string> simArgs;

    const auto need = [&](std::size_t i) -> const std::string& {
        if (i + 1 >= args.size())
            usageError("'" + args[i] + "' needs a value");
        return args[i + 1];
    };
    std::size_t i = 0;
    for (; i < args.size(); ++i) {
        const std::string& a = args[i];
        if (a == "--") {
            ++i;
            break;
        }
        if (a == "--rates") {
            rates = need(i); ++i;
        } else if (a == "--timeout") {
            const std::string& v = need(i); ++i;
            char* end = nullptr;
            timeout = std::strtod(v.c_str(), &end);
            if (end != v.c_str() + v.size() || !(timeout >= 0.0))
                usageError("--timeout needs seconds >= 0");
        } else if (a == "--wait") {
            wait = true;
        } else if (a == "--out") {
            outPath = need(i); ++i;
        } else if (a == "--poll-ms") {
            const std::string& v = need(i); ++i;
            pollMs = static_cast<unsigned>(
                std::strtoul(v.c_str(), nullptr, 10));
            if (pollMs == 0)
                usageError("--poll-ms needs a positive integer");
        } else {
            usageError("unknown submit option '" + a +
                       "' (simulator flags go after --)");
        }
    }
    for (; i < args.size(); ++i)
        simArgs.push_back(args[i]);

    std::string req = "{\"schema\":";
    req += proto::jsonString(proto::kSchema);
    req += ",\"verb\":\"submit\",\"args\":[";
    for (std::size_t k = 0; k < simArgs.size(); ++k) {
        if (k != 0)
            req += ",";
        req += proto::jsonString(simArgs[k]);
    }
    req += "]";
    if (!rates.empty())
        req += ",\"rates\":" + proto::jsonString(rates);
    if (timeout >= 0.0) {
        req += ",\"timeout\":" + log::strf("%.17g", timeout);
    }
    req += "}";

    const Reply r = roundTrip(socket_path, req);
    std::cout << r.line << "\n";
    if (!r.ok)
        return rejectionExit(r);
    if (!wait)
        return 0;
    const proto::JsonValue* job = r.root.find("job");
    if (job == nullptr ||
        job->kind != proto::JsonValue::Kind::Number)
        usageError("malformed submit reply: " + r.line);
    return waitForJob(socket_path,
                      static_cast<std::uint64_t>(job->number),
                      outPath, pollMs);
}

int
run(const std::vector<std::string>& args)
{
    std::string socketPath;
    std::size_t i = 0;
    if (i < args.size() && (args[i] == "--help" || args[i] == "-h")) {
        std::cout
            << "usage: orion_submit --socket PATH VERB [options]\n"
               "  submit [--rates F:L:N] [--timeout SEC] [--wait]\n"
               "         [--out FILE] [--poll-ms N] -- SIM_ARGS...\n"
               "  status JOB\n"
               "  result JOB [--out FILE]\n"
               "  cancel JOB\n"
               "  stats\n";
        return 0;
    }
    if (i + 1 < args.size() && args[i] == "--socket") {
        socketPath = args[i + 1];
        i += 2;
    }
    if (socketPath.empty())
        usageError("--socket PATH must come first (--help for usage)");
    if (i >= args.size())
        usageError("missing verb (--help for usage)");
    const std::string verb = args[i++];
    const std::vector<std::string> rest(args.begin() +
                                            static_cast<long>(i),
                                        args.end());

    if (verb == "submit")
        return submitMain(socketPath, rest);
    if (verb == "stats") {
        const Reply r =
            roundTrip(socketPath, simpleRequest("stats", 0));
        std::cout << r.line << "\n";
        return r.ok ? 0 : rejectionExit(r);
    }
    if (verb == "status" || verb == "cancel") {
        if (rest.empty())
            usageError(verb + " needs a JOB id");
        const Reply r = roundTrip(
            socketPath, simpleRequest(verb, parseJobId(rest[0])));
        std::cout << r.line << "\n";
        return r.ok ? 0 : rejectionExit(r);
    }
    if (verb == "result") {
        if (rest.empty())
            usageError("result needs a JOB id");
        std::string outPath;
        for (std::size_t k = 1; k < rest.size(); ++k) {
            if (rest[k] == "--out" && k + 1 < rest.size()) {
                outPath = rest[k + 1];
                ++k;
            } else {
                usageError("unknown result option '" + rest[k] + "'");
            }
        }
        return fetchResult(socketPath, parseJobId(rest[0]), outPath);
    }
    usageError("unknown verb '" + verb + "' (--help for usage)");
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        return run(std::vector<std::string>(argv + 1, argv + argc));
    } catch (const proto::ProtoError& e) {
        log::diag(Level::Error, "submit.proto_error",
                  std::string("orion_submit: ") + e.what() + "\n",
                  {});
        return 2;
    } catch (const std::exception& e) {
        log::diag(Level::Error, "submit.fatal",
                  std::string(e.what()) + "\n", {});
        return 1;
    }
}
