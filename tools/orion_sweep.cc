/**
 * @file
 * orion_sweep — injection-rate sweep driver.
 *
 * Runs the same configuration across a range of injection rates and
 * emits one CSV row per point (the series behind latency/power vs.
 * load figures), plus the measured zero-load latency and the paper's
 * 2x-zero-load saturation point. Accepts all orion_sim options, plus:
 *
 *   --rates FIRST:LAST:COUNT   evenly spaced rates (default
 *                              0.01:0.20:10)
 *   --seeds N                  average each point over N seeds and
 *                              report the latency spread
 *   --metrics-dir DIR          write each point's sampled time series
 *                              to DIR/point_NNN.csv (with --seeds N>1:
 *                              DIR/seed_K/point_NNN.csv per seed)
 *   --trace-dir DIR            write each point's Chrome trace JSON
 *                              to DIR/point_NNN.json (per-seed
 *                              subdirectories with --seeds N>1)
 *   --checkpoint FILE          journal each finished cell to FILE
 *   --resume FILE              skip cells already journaled in FILE
 *                              (and keep appending to it); the merged
 *                              CSV is byte-identical to an
 *                              uninterrupted run at any --jobs
 *   --isolate                  run each point in a fork/exec'd
 *                              orion_sim subprocess: a crash, OOM, or
 *                              wedge is one structured failed row,
 *                              never a dead sweep
 *   --isolate-exe PATH         the orion_sim binary (default: next to
 *                              this binary)
 *   --isolate-mem MB           worker RLIMIT_AS cap in MiB
 *   --isolate-cpu SEC          worker RLIMIT_CPU cap in seconds
 *
 * Exit codes: 0 ok; 1 usage error or unexpected exception; 3 one or
 * more points failed (rows for healthy points still printed); 5
 * interrupted by SIGINT/SIGTERM (no CSV; a resume hint is printed
 * when journaling). See docs/ROBUSTNESS.md.
 *
 * Example:
 *   orion_sweep --preset vc64 --rates 0.02:0.18:9 --seeds 3 > vc64.csv
 */

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/cancel.hh"
#include "core/checkpoint.hh"
#include "core/cli.hh"
#include "core/executor.hh"
#include "core/isolate.hh"
#include "core/log.hh"
#include "core/manifest.hh"
#include "core/progress.hh"
#include "core/report.hh"
#include "core/sweep.hh"
#include "sim/rng.hh"

using namespace orion;

namespace {

namespace log = core::log;

/** Monotonic seconds for per-point resource accounting. */
double
monotonicSeconds()
{
    const auto t = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}

/** 16-hex-char rendering of a sweep fingerprint. */
std::string
fingerprintHex(std::uint64_t fp)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(fp));
    return buf;
}

/** CSV cell for an optional resource value ("" when unmeasured). */
std::string
resourceCell(bool valid, double seconds)
{
    return valid ? report::fmt(seconds, 3) : std::string{};
}

/** DIR/point_NNN.EXT for sweep point @p i. */
std::string
pointPath(const std::string& dir, std::size_t i, const char* ext)
{
    char name[32];
    std::snprintf(name, sizeof name, "point_%03zu.%s", i, ext);
    return (std::filesystem::path(dir) / name).string();
}

/** DIR/seed_K for seed @p k of a multi-seed sweep. */
std::string
seedDir(const std::string& dir, unsigned k)
{
    char name[24];
    std::snprintf(name, sizeof name, "seed_%u", k);
    return (std::filesystem::path(dir) / name).string();
}

void
writeFile(const std::string& path, const std::string& content)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw std::runtime_error("orion_sweep: cannot open '" + path +
                                 "' for writing");
    out << content;
}

SweepPoint
pointFromEntry(const core::CheckpointEntry& e, double rate,
               bool from_checkpoint)
{
    SweepPoint p;
    p.injectionRate = rate;
    p.report = e.report;
    p.attempts = e.attempts;
    p.ran = true;
    p.fromCheckpoint = from_checkpoint;
    if (e.failed) {
        p.failure = PointFailure{e.failureReason, e.failureMessage,
                                 e.failureForensics};
    }
    return p;
}

/** Everything the isolated-worker orchestration needs per cell. */
struct IsolateConfig
{
    std::string exe;
    /** The orion_sim argv tail shared by every cell (the sweep's own
     * options already stripped). */
    std::vector<std::string> rest;
    std::uint64_t baseSeed = 0;
    unsigned maxAttempts = 2;
    unsigned backoffMs = 0;
    double pointTimeoutSeconds = 0.0;
    std::uint64_t memMb = 0;
    std::uint64_t cpuSeconds = 0;
    std::string tmpDir;
    core::CheckpointJournal* journal = nullptr;
    /** Live progress tracker (not owned, may be null). */
    core::ProgressTracker* progress = nullptr;
};

/** Read and parse the single entry line a worker wrote with
 * --report-out. Returns false when the file is missing, empty, or
 * corrupt (a crashed worker). */
bool
readWorkerEntry(const std::string& path, core::CheckpointEntry& out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::string line;
    if (!std::getline(in, line) || line.empty())
        return false;
    try {
        out = core::parseEntry(line);
    } catch (const core::CheckpointError&) {
        return false;
    }
    return true;
}

/**
 * One sweep cell, executed in a fork/exec'd orion_sim. Mirrors the
 * in-process retry contract exactly: attempt k runs on
 * sim::deriveSeed(seed, i, k * kRetrySeedOffset), check failures get
 * retried, deadline/interrupt outcomes do not. The worker passes its
 * report back through --report-out in the checkpoint entry format
 * (exact hexfloat doubles), so the merged CSV is bit-identical to an
 * in-process sweep; a crash or OOM becomes a structured
 * StopReason::WorkerCrash failure with the exit status and stderr
 * tail attached.
 */
SweepPoint
runIsolatedPointInner(std::size_t i, double rate,
                      const IsolateConfig& cfg,
                      core::ProgressScope& scope)
{
    SweepPoint p;
    p.injectionRate = rate;
    std::string crash_message;
    std::string worker_exit;
    for (unsigned attempt = 0; attempt < cfg.maxAttempts; ++attempt) {
        if (core::interruptToken().cancelled()) {
            p.ran = true;
            p.report.stopReason = StopReason::Interrupted;
            p.failure = PointFailure{
                StopReason::Interrupted,
                "sweep interrupted before the cell could run",
                std::string{}};
            return p;
        }
        if (attempt > 0 && cfg.backoffMs > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(cfg.backoffMs));
        }
        p.ran = true;
        p.attempts = attempt + 1;
        scope.setAttempt(p.attempts);

        const std::uint64_t seed = sim::deriveSeed(
            cfg.baseSeed, i, attempt * kRetrySeedOffset);
        const std::string report_path =
            cfg.tmpDir + "/point_" + std::to_string(i) + "_" +
            std::to_string(attempt) + ".entry";

        core::IsolateOptions io;
        io.argv.push_back(cfg.exe);
        io.argv.insert(io.argv.end(), cfg.rest.begin(),
                       cfg.rest.end());
        // Appended flags win over anything in rest: the worker runs
        // exactly this cell's rate and fully derived seed. The rate
        // rides as a hexfloat so the worker reconstructs the
        // identical double.
        const char* extra[] = {"--rate", "--seed", "--report-out"};
        const std::string vals[] = {core::exactDouble(rate),
                                    std::to_string(seed),
                                    report_path};
        for (std::size_t f = 0; f < 3; ++f) {
            io.argv.push_back(extra[f]);
            io.argv.push_back(vals[f]);
        }
        // The worker's own --point-timeout (still in rest) handles
        // the cooperative deadline with forensics; the parent
        // watchdog is only the backstop for a wedged worker.
        io.timeoutSeconds = cfg.pointTimeoutSeconds > 0.0
                                ? cfg.pointTimeoutSeconds * 2.0 + 5.0
                                : 0.0;
        io.maxAddressSpaceBytes = cfg.memMb * 1024 * 1024;
        io.maxCpuSeconds = cfg.cpuSeconds;
        io.quietStdout = true;
        io.cancel = &core::interruptToken();

        const core::IsolateResult res = core::runIsolated(io);
        if (res.haveRusage) {
            // Child rusage from wait4: per-point CPU/RSS accounting
            // across all attempts.
            p.resources.valid = true;
            p.resources.cpuSeconds += res.cpuSeconds;
            p.resources.maxRssKb =
                std::max(p.resources.maxRssKb, res.maxRssKb);
        }
        if (log::enabled(log::Level::Debug)) {
            log::event(
                log::Level::Debug, "sweep.worker_exit",
                {log::u64("rate_index", i),
                 log::u64("attempt", p.attempts),
                 log::str("exit", res.describe()),
                 log::num("cpu_s", res.cpuSeconds),
                 log::u64("maxrss_kb", static_cast<std::uint64_t>(
                                           std::max(0L, res.maxRssKb)))});
        }
        core::CheckpointEntry entry;
        const bool have_entry = readWorkerEntry(report_path, entry);
        std::remove(report_path.c_str());

        if (res.interrupted || (res.exited && res.exitCode == 5)) {
            p.report.stopReason = StopReason::Interrupted;
            p.failure = PointFailure{
                StopReason::Interrupted,
                "interrupted mid-run (SIGINT/SIGTERM)",
                std::string{}};
            return p;
        }
        if (res.timedOut) {
            // The worker blew past even the backstop (a wedge the
            // cooperative deadline could not reach); not retried,
            // not journaled.
            p.report.stopReason = StopReason::Deadline;
            p.failure = PointFailure{
                StopReason::Deadline,
                "worker exceeded the watchdog deadline and was "
                "killed (" +
                    res.describe() + ")",
                std::string{}};
            return p;
        }
        if (res.exited && res.exitCode == 6) {
            // Cooperative --point-timeout inside the worker: the
            // report entry carries the deadline forensics.
            p.report.stopReason = StopReason::Deadline;
            if (have_entry) {
                p.report = entry.report;
                p.failure =
                    PointFailure{StopReason::Deadline,
                                 entry.failureMessage,
                                 entry.failureForensics};
            } else {
                p.failure = PointFailure{
                    StopReason::Deadline,
                    "worker hit --point-timeout (exit 6)",
                    std::string{}};
            }
            return p;
        }
        if (res.healthyExit() && have_entry) {
            p.report = entry.report;
            if (entry.failed) {
                p.failure = PointFailure{entry.failureReason,
                                         entry.failureMessage,
                                         entry.failureForensics};
                if (entry.failureReason ==
                        StopReason::CheckFailure &&
                    attempt + 1 < cfg.maxAttempts) {
                    continue; // the in-process retry contract
                }
            } else {
                p.failure.reset();
            }
            if (cfg.journal != nullptr) {
                entry.rateIndex = i;
                entry.seedIndex = 0;
                entry.attempts = p.attempts;
                entry.workerExit = res.describe();
                cfg.journal->append(entry);
            }
            return p;
        }

        // Crash, OOM kill, exec failure, or a healthy-looking exit
        // that produced no parseable report: retry, then record a
        // structured worker-crash failure.
        worker_exit = res.describe();
        crash_message = "worker crashed (" + worker_exit + ")";
        if (res.healthyExit())
            crash_message =
                "worker " + worker_exit +
                " but wrote no parseable report";
        if (!res.stderrTail.empty())
            crash_message += ": " + res.stderrTail;
    }

    p.report = Report{};
    p.report.stopReason = StopReason::WorkerCrash;
    p.failure = PointFailure{StopReason::WorkerCrash, crash_message,
                             std::string{}};
    if (cfg.journal != nullptr) {
        core::CheckpointEntry entry;
        entry.rateIndex = i;
        entry.seedIndex = 0;
        entry.attempts = p.attempts;
        entry.report = p.report;
        entry.failed = true;
        entry.failureReason = StopReason::WorkerCrash;
        entry.failureMessage = crash_message;
        entry.workerExit = worker_exit;
        cfg.journal->append(entry);
    }
    return p;
}

/** runIsolatedPointInner wrapped in a ProgressScope + wall clock, so
 * heartbeat and resource accounting see isolated cells the same way
 * they see in-process ones. */
SweepPoint
runIsolatedPoint(std::size_t i, double rate, const IsolateConfig& cfg)
{
    core::ProgressScope scope(cfg.progress, i, 0);
    const double wall0 = monotonicSeconds();
    SweepPoint p = runIsolatedPointInner(i, rate, cfg, scope);
    if (p.resources.valid)
        p.resources.wallSeconds = monotonicSeconds() - wall0;
    // End after the inner function's journal append, so a heartbeat's
    // done count never exceeds the journal's entry count.
    scope.end(p.failure.has_value());
    return p;
}

/** The isolated-mode sweep driver: same fan-out, merge order, and
 * resume semantics as Sweep::overRates, with each cell in its own
 * process. */
std::vector<SweepPoint>
isolatedSweep(const std::vector<double>& rates, unsigned jobs,
              const IsolateConfig& cfg,
              const std::vector<core::CheckpointEntry>* resume)
{
    std::unordered_map<std::uint64_t, const core::CheckpointEntry*>
        cached;
    if (resume != nullptr) {
        for (const core::CheckpointEntry& e : *resume) {
            if (e.rateIndex < rates.size() && e.seedIndex == 0)
                cached[e.rateIndex] = &e; // duplicates: last wins
        }
    }

    core::WorkerSlots<SweepPoint> points(rates.size());
    core::parallelFor(
        jobs, rates.size(),
        [&](std::size_t i) {
            core::RoleGuard guard(points.role());
            const auto hit = cached.find(i);
            if (hit != cached.end()) {
                points.slot(i) = pointFromEntry(
                    *hit->second, rates[i], /*from_checkpoint=*/true);
                if (cfg.progress != nullptr)
                    cfg.progress->noteCached();
                return;
            }
            points.slot(i) = runIsolatedPoint(i, rates[i], cfg);
        },
        &core::interruptToken());
    std::vector<SweepPoint> out = std::move(points).take();
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i].injectionRate = rates[i];
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    std::vector<double> rates = Sweep::linspace(0.01, 0.20, 10);
    unsigned seeds = 1;
    std::string metrics_dir;
    std::string trace_dir;
    std::string checkpoint_path;
    std::string resume_path;
    bool isolate = false;
    std::string isolate_exe;
    std::uint64_t isolate_mem_mb = 0;
    std::uint64_t isolate_cpu_s = 0;
    std::string heartbeat_path;
    double heartbeat_interval = 1.0;
    bool progress_line = false;
    bool resources_cols = false;

    // Extract the sweep-only options, pass the rest to the shared
    // parser (and, in --isolate mode, to the worker processes).
    std::vector<std::string> rest;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--isolate") {
            isolate = true;
            continue;
        }
        if (args[i] == "--progress") {
            progress_line = true;
            continue;
        }
        if (args[i] == "--resources") {
            resources_cols = true;
            continue;
        }
        if (args[i] == "--rates" || args[i] == "--seeds" ||
            args[i] == "--metrics-dir" || args[i] == "--trace-dir" ||
            args[i] == "--checkpoint" || args[i] == "--resume" ||
            args[i] == "--isolate-exe" ||
            args[i] == "--isolate-mem" || args[i] == "--isolate-cpu" ||
            args[i] == "--heartbeat" ||
            args[i] == "--heartbeat-interval") {
            const std::string opt = args[i];
            if (i + 1 >= args.size()) {
                log::diag(log::Level::Error, "sweep.usage",
                          log::strf("orion_sweep: %s: missing value\n",
                                    opt.c_str()));
                return 1;
            }
            try {
                if (opt == "--rates")
                    rates = cli::parseRateSpec(args[++i]);
                else if (opt == "--seeds")
                    seeds = static_cast<unsigned>(
                        std::stoul(args[++i]));
                else if (opt == "--metrics-dir")
                    metrics_dir = args[++i];
                else if (opt == "--trace-dir")
                    trace_dir = args[++i];
                else if (opt == "--checkpoint")
                    checkpoint_path = args[++i];
                else if (opt == "--resume")
                    resume_path = args[++i];
                else if (opt == "--isolate-exe")
                    isolate_exe = args[++i];
                else if (opt == "--isolate-mem")
                    isolate_mem_mb = std::stoull(args[++i]);
                else if (opt == "--heartbeat")
                    heartbeat_path = args[++i];
                else if (opt == "--heartbeat-interval")
                    heartbeat_interval = std::stod(args[++i]);
                else
                    isolate_cpu_s = std::stoull(args[++i]);
            } catch (const std::exception& e) {
                log::diag(log::Level::Error, "sweep.usage",
                          log::strf("orion_sweep: bad %s: %s\n",
                                    opt.c_str(), e.what()));
                return 1;
            }
        } else {
            rest.push_back(args[i]);
        }
    }
    if (seeds < 1) {
        log::diag(log::Level::Error, "sweep.usage",
                  "orion_sweep: --seeds must be >= 1\n");
        return 1;
    }
    if (heartbeat_interval <= 0.0) {
        log::diag(log::Level::Error, "sweep.usage",
                  "orion_sweep: --heartbeat-interval must be > 0 "
                  "seconds\n");
        return 1;
    }
    if (!checkpoint_path.empty() && !resume_path.empty()) {
        log::diag(log::Level::Error, "sweep.usage",
                  "orion_sweep: --checkpoint and --resume are "
                  "mutually exclusive (--resume keeps appending "
                  "to its journal)\n");
        return 1;
    }
    const bool journaling =
        !checkpoint_path.empty() || !resume_path.empty();
    if (journaling && (!metrics_dir.empty() || !trace_dir.empty())) {
        log::diag(log::Level::Error, "sweep.usage",
                  "orion_sweep: --checkpoint/--resume cannot be "
                  "combined with --metrics-dir/--trace-dir "
                  "(telemetry exports are not journaled)\n");
        return 1;
    }
    if (isolate && seeds > 1) {
        log::diag(log::Level::Error, "sweep.usage",
                  "orion_sweep: --isolate supports --seeds 1 "
                  "only\n");
        return 1;
    }
    if (isolate && (!metrics_dir.empty() || !trace_dir.empty())) {
        log::diag(log::Level::Error, "sweep.usage",
                  "orion_sweep: --isolate cannot be combined with "
                  "--metrics-dir/--trace-dir\n");
        return 1;
    }
    if (!isolate && (!isolate_exe.empty() || isolate_mem_mb != 0 ||
                     isolate_cpu_s != 0)) {
        log::diag(log::Level::Error, "sweep.usage",
                  "orion_sweep: --isolate-exe/--isolate-mem/"
                  "--isolate-cpu require --isolate\n");
        return 1;
    }

    try {
        const cli::Options opts = cli::parse(rest);
        if (opts.helpRequested) {
            std::fputs(cli::usage().c_str(), stdout);
            std::fputs("\nsweep:\n  --rates FIRST:LAST:COUNT   "
                       "evenly spaced rates (default 0.01:0.20:10)\n"
                       "  --seeds N                  average each point "
                       "over N seeds\n"
                       "  --metrics-dir DIR          per-point metric "
                       "CSVs (DIR/point_NNN.csv;\n"
                       "                             DIR/seed_K/... "
                       "with --seeds N>1)\n"
                       "  --trace-dir DIR            per-point Chrome "
                       "traces (DIR/point_NNN.json;\n"
                       "                             per-seed subdirs "
                       "with --seeds N>1)\n"
                       "  --checkpoint FILE          journal finished "
                       "cells to FILE (crash-safe)\n"
                       "  --resume FILE              skip cells "
                       "journaled in FILE, append new ones;\n"
                       "                             merged output is "
                       "byte-identical to an\n"
                       "                             uninterrupted run "
                       "at any --jobs\n"
                       "  --isolate                  one orion_sim "
                       "subprocess per point (crashes\n"
                       "                             become structured "
                       "failed rows)\n"
                       "  --isolate-exe PATH         worker binary "
                       "(default: next to orion_sweep)\n"
                       "  --isolate-mem MB           worker RLIMIT_AS "
                       "cap (MiB)\n"
                       "  --isolate-cpu SEC          worker RLIMIT_CPU "
                       "cap (seconds)\n"
                       "  --heartbeat FILE           atomically "
                       "rewritten progress JSON (watch with\n"
                       "                             tools/"
                       "orion_status.py)\n"
                       "  --heartbeat-interval SEC   background "
                       "refresh period (default 1)\n"
                       "  --progress                 rewriting stderr "
                       "progress line (TTY only)\n"
                       "  --resources                append wall_s/"
                       "cpu_s/maxrss_kb CSV columns\n"
                       "                             (nondeterministic "
                       "values; off by default)\n",
                       stdout);
            return 0;
        }
        log::configureFromEnv();
        if (!opts.logOut.empty()) {
            log::Level level = log::Level::Info;
            log::parseLevel(opts.logLevel, level);
            log::configure(opts.logOut, level);
        }

        // One Ctrl-C/SIGTERM stops every in-flight point
        // cooperatively; a second one kills the process the
        // old-fashioned way (the handler stays installed but the
        // token is already cancelled).
        std::signal(SIGPIPE, SIG_IGN);
        core::installInterruptHandlers();

        const double zero_load = Sweep::zeroLoadLatency(
            opts.network, opts.traffic, opts.sim);

        // Per-point telemetry export: the dir options imply the same
        // telemetry defaults --metrics-out/--trace-out do in
        // orion_sim. Telemetry stays off in parallel sweeps unless
        // explicitly requested here.
        SimConfig sim_cfg = opts.sim;
        if (!metrics_dir.empty()) {
            if (sim_cfg.telemetry.sampleInterval == 0)
                sim_cfg.telemetry.sampleInterval = 1000;
            std::filesystem::create_directories(metrics_dir);
        }
        if (!trace_dir.empty()) {
            sim_cfg.telemetry.traceEnabled = true;
            std::filesystem::create_directories(trace_dir);
        }

        // Checkpoint plumbing: the fingerprint binds the journal to
        // this exact configuration and grid; a mismatched --resume is
        // a structured error, never a silent mix of results.
        const std::uint64_t fingerprint = core::sweepFingerprint(
            opts.network, opts.traffic, sim_cfg, rates, seeds);
        std::vector<core::CheckpointEntry> resume_entries;
        std::unique_ptr<core::CheckpointJournal> journal;
        if (!resume_path.empty()) {
            core::CheckpointLoad load =
                core::loadCheckpoint(resume_path, fingerprint);
            resume_entries = std::move(load.entries);
            if (load.truncatedTail) {
                log::diag(log::Level::Warn, "sweep.torn_journal",
                          "orion_sweep: note: dropped a torn "
                          "final journal line (crash artifact); "
                          "that cell reruns\n");
            }
            log::diag(log::Level::Info, "sweep.resume",
                      log::strf("orion_sweep: resuming: %zu cells "
                                "cached in '%s'\n",
                                resume_entries.size(),
                                resume_path.c_str()),
                      {log::u64("cached", resume_entries.size()),
                       log::str("journal", resume_path)});
            journal = std::make_unique<core::CheckpointJournal>(
                resume_path, fingerprint, /*resume=*/true);
        } else if (!checkpoint_path.empty()) {
            journal = std::make_unique<core::CheckpointJournal>(
                checkpoint_path, fingerprint, /*resume=*/false);
        }
        const std::string journal_path =
            !resume_path.empty() ? resume_path : checkpoint_path;

        // Run manifest: explicit --manifest-out, or automatically
        // beside a checkpoint journal so long runs self-describe.
        std::string manifest_path = opts.manifestOut;
        if (manifest_path.empty() && !journal_path.empty())
            manifest_path = journal_path + ".manifest.json";
        core::RunManifest manifest =
            core::RunManifest::begin("orion_sweep");
        manifest.fingerprintHex = fingerprintHex(fingerprint);
        manifest.seed = sim_cfg.seed;
        manifest.seeds = seeds;
        manifest.ratePoints = rates.size();
        manifest.pointsTotal =
            static_cast<std::uint64_t>(rates.size()) * seeds;
        const auto writeManifest = [&](const char* reason) {
            if (manifest_path.empty())
                return;
            manifest.finish(reason);
            try {
                core::writeFileAtomic(manifest_path,
                                      manifest.toJson());
            } catch (const std::exception& e) {
                log::diag(log::Level::Warn, "sweep.manifest_failed",
                          log::strf("orion_sweep: cannot write "
                                    "manifest '%s': %s\n",
                                    manifest_path.c_str(), e.what()));
            }
        };

        // Live progress: heartbeat file and/or TTY progress line.
        std::unique_ptr<core::ProgressTracker> tracker;
        if (!heartbeat_path.empty() || progress_line) {
            core::ProgressTracker::Options po;
            po.heartbeatPath = heartbeat_path;
            po.heartbeatIntervalSeconds = heartbeat_interval;
            po.progressLine = progress_line;
            po.totalCells =
                static_cast<std::uint64_t>(rates.size()) * seeds;
            po.jobs = opts.jobs != 0
                          ? opts.jobs
                          : std::max(
                                1u,
                                std::thread::hardware_concurrency());
            tracker = std::make_unique<core::ProgressTracker>(po);
        }
        log::event(log::Level::Info, "sweep.start",
                   {log::str("fingerprint", manifest.fingerprintHex),
                    log::u64("rate_points", rates.size()),
                    log::u64("seeds", seeds),
                    log::u64("cells", manifest.pointsTotal),
                    log::boolean("isolate", isolate),
                    log::u64("cached", resume_entries.size())});

        SweepOptions sweep_opts;
        sweep_opts.jobs = opts.jobs;
        sweep_opts.retry =
            RetryPolicy{opts.pointRetries, opts.pointBackoffMs};
        sweep_opts.pointTimeoutSeconds = opts.pointTimeoutSeconds;
        sweep_opts.cancel = &core::interruptToken();
        sweep_opts.journal = journal.get();
        sweep_opts.resume =
            resume_path.empty() ? nullptr : &resume_entries;
        sweep_opts.progress = tracker.get();

        // After any sweep: an interrupt means no CSV (a partial
        // table masquerading as a full sweep is worse than none) —
        // print the resume recipe instead and exit 5.
        const auto interruptedEpilogue = [&]() -> int {
            writeManifest("interrupted");
            log::diag(log::Level::Warn, "sweep.interrupted",
                      log::strf("orion_sweep: interrupted (signal %d) "
                                "mid-sweep; no CSV emitted\n",
                                core::interruptSignal()));
            if (!journal_path.empty()) {
                log::diag(
                    log::Level::Info, "sweep.resume_hint",
                    log::strf("orion_sweep: finished cells are "
                              "journaled; rerun with --resume '%s' "
                              "(instead of --checkpoint) to pick up "
                              "where this run stopped\n",
                              journal_path.c_str()));
            } else {
                log::diag(log::Level::Info, "sweep.resume_hint",
                          "orion_sweep: no --checkpoint journal, "
                          "so finished cells were discarded\n");
            }
            return 5;
        };

        if (seeds > 1) {
            const auto points = Sweep::overRatesAveraged(
                opts.network, opts.traffic, sim_cfg, rates, seeds,
                sweep_opts);
            if (tracker)
                tracker->finalize();
            manifest.pointsFromCheckpoint =
                tracker ? tracker->fromCheckpoint()
                        : resume_entries.size();
            for (const auto& p : points) {
                manifest.pointsCompleted += p.ranSeeds - p.failedSeeds;
                manifest.pointsFailed += p.failedSeeds;
            }
            if (core::interruptToken().cancelled())
                return interruptedEpilogue();

            // Multi-seed telemetry lands in per-seed subdirectories:
            // DIR/seed_K/point_NNN.{csv,json} (failed seeds captured
            // nothing and are skipped).
            for (unsigned k = 0; k < seeds; ++k) {
                if (!metrics_dir.empty())
                    std::filesystem::create_directories(
                        seedDir(metrics_dir, k));
                if (!trace_dir.empty())
                    std::filesystem::create_directories(
                        seedDir(trace_dir, k));
            }
            for (std::size_t i = 0; i < points.size(); ++i) {
                const auto& p = points[i];
                for (unsigned k = 0; k < seeds; ++k) {
                    if (!metrics_dir.empty() &&
                        !p.metricsCsvBySeed[k].empty()) {
                        writeFile(pointPath(seedDir(metrics_dir, k),
                                            i, "csv"),
                                  p.metricsCsvBySeed[k]);
                    }
                    if (!trace_dir.empty() &&
                        !p.traceJsonBySeed[k].empty()) {
                        writeFile(pointPath(seedDir(trace_dir, k), i,
                                            "json"),
                                  p.traceJsonBySeed[k]);
                    }
                }
            }
            report::Table t;
            t.headers = {"rate",        "completed",   "latency_mean",
                         "latency_min", "latency_max", "throughput",
                         "power_w",     "failed_seeds", "attempts"};
            if (resources_cols) {
                t.headers.insert(t.headers.end(),
                                 {"wall_s", "cpu_s", "maxrss_kb"});
            }
            unsigned failed = 0;
            for (const auto& p : points) {
                failed += p.failedSeeds;
                unsigned attempts = 0;
                for (unsigned a : p.attemptsBySeed)
                    attempts += a;
                std::vector<std::string> row{
                    report::fmt(p.injectionRate, 4),
                    p.allCompleted ? "1" : "0",
                    report::fmt(p.meanLatency, 3),
                    report::fmt(p.minLatency, 3),
                    report::fmt(p.maxLatency, 3),
                    report::fmt(p.meanThroughput, 4),
                    report::fmt(p.meanPowerWatts, 4),
                    std::to_string(p.failedSeeds),
                    std::to_string(attempts),
                };
                if (resources_cols) {
                    const PointResources& rs = p.resources;
                    row.push_back(
                        resourceCell(rs.valid, rs.wallSeconds));
                    row.push_back(
                        resourceCell(rs.valid, rs.cpuSeconds));
                    row.push_back(rs.valid
                                      ? std::to_string(rs.maxRssKb)
                                      : std::string{});
                }
                t.addRow(std::move(row));
            }
            writeManifest(failed > 0 ? "failed-points" : "ok");
            std::fputs(report::formatCsv(t).c_str(), stdout);
            log::diag(log::Level::Info, "sweep.done",
                      log::strf("# zero-load latency: %.2f cycles; "
                                "%u seeds per point\n",
                                zero_load, seeds),
                      {log::u64("failed_seeds", failed)});
            if (failed > 0) {
                for (const auto& p : points) {
                    if (p.failedSeeds == 0)
                        continue;
                    log::diag(
                        log::Level::Error, "sweep.point_failed",
                        log::strf("orion_sweep: rate %.4f: %u of %u "
                                  "seeds failed: %s\n",
                                  p.injectionRate, p.failedSeeds,
                                  p.seeds, p.firstFailure.c_str()));
                }
                return 3;
            }
            return 0;
        }

        std::vector<SweepPoint> points;
        if (isolate) {
            IsolateConfig cfg;
            cfg.exe = isolate_exe;
            if (cfg.exe.empty()) {
                // Default: the orion_sim built next to this binary.
                const std::filesystem::path self(argv[0]);
                cfg.exe = (self.parent_path() / "orion_sim").string();
            }
            cfg.rest = rest;
            cfg.baseSeed = sim_cfg.seed;
            cfg.maxAttempts = std::max(1u, opts.pointRetries);
            cfg.backoffMs = opts.pointBackoffMs;
            cfg.pointTimeoutSeconds = opts.pointTimeoutSeconds;
            cfg.memMb = isolate_mem_mb;
            cfg.cpuSeconds = isolate_cpu_s;
            cfg.journal = journal.get();
            cfg.progress = tracker.get();
            // Observability flags stay in the parent: workers would
            // otherwise race to overwrite one manifest file and pay
            // for per-cell phase profiles nobody collects.
            std::vector<std::string> worker_rest;
            for (std::size_t f = 0; f < cfg.rest.size(); ++f) {
                const std::string& a = cfg.rest[f];
                if (a == "--log-out" || a == "--log-level" ||
                    a == "--manifest-out") {
                    ++f; // skip the flag's value too
                    continue;
                }
                if (a == "--profile-phases")
                    continue;
                worker_rest.push_back(a);
            }
            cfg.rest = std::move(worker_rest);
            char tmpl[] = "/tmp/orion_sweep.XXXXXX";
            if (::mkdtemp(tmpl) == nullptr) {
                log::diag(log::Level::Error, "sweep.error",
                          "orion_sweep: mkdtemp failed for worker "
                          "report files\n");
                return 1;
            }
            cfg.tmpDir = tmpl;
            points = isolatedSweep(
                rates, opts.jobs, cfg,
                resume_path.empty() ? nullptr : &resume_entries);
            std::error_code ec;
            std::filesystem::remove_all(cfg.tmpDir, ec);
        } else {
            points = Sweep::overRates(opts.network, opts.traffic,
                                      sim_cfg, rates, sweep_opts);
        }
        if (tracker)
            tracker->finalize();
        manifest.pointsFromCheckpoint =
            tracker ? tracker->fromCheckpoint() : resume_entries.size();
        for (const auto& p : points) {
            if (!p.ran)
                continue;
            if (p.failure)
                ++manifest.pointsFailed;
            else
                ++manifest.pointsCompleted;
        }
        if (core::interruptToken().cancelled())
            return interruptedEpilogue();

        for (std::size_t i = 0; i < points.size(); ++i) {
            if (!metrics_dir.empty())
                writeFile(pointPath(metrics_dir, i, "csv"),
                          points[i].metricsCsv);
            if (!trace_dir.empty())
                writeFile(pointPath(trace_dir, i, "json"),
                          points[i].traceJson);
        }

        report::Table t;
        t.headers = {"rate",    "completed", "latency", "p95",
                     "throughput", "power_w", "buffer_w", "crossbar_w",
                     "arbiter_w",  "link_w",  "status",   "attempts"};
        if (resources_cols) {
            t.headers.insert(t.headers.end(),
                             {"wall_s", "cpu_s", "maxrss_kb"});
        }
        for (const auto& p : points) {
            const Report& r = p.report;
            std::vector<std::string> row{
                report::fmt(p.injectionRate, 4),
                r.completed ? "1" : "0",
                report::fmt(r.avgLatencyCycles, 3),
                report::fmt(r.p95LatencyCycles, 0),
                report::fmt(r.acceptedFlitsPerNodePerCycle, 4),
                report::fmt(r.networkPowerWatts, 4),
                report::fmt(r.breakdownWatts.buffer, 4),
                report::fmt(r.breakdownWatts.crossbar, 4),
                report::fmt(r.breakdownWatts.arbiter, 5),
                report::fmt(r.breakdownWatts.link, 4),
                stopReasonName(r.stopReason),
                std::to_string(p.attempts),
            };
            if (resources_cols) {
                const PointResources& rs = p.resources;
                row.push_back(resourceCell(rs.valid, rs.wallSeconds));
                row.push_back(resourceCell(rs.valid, rs.cpuSeconds));
                row.push_back(rs.valid ? std::to_string(rs.maxRssKb)
                                       : std::string{});
            }
            t.addRow(std::move(row));
        }
        bool any_failed = false;
        for (const auto& p : points)
            any_failed = any_failed || p.failure.has_value();
        writeManifest(any_failed ? "failed-points" : "ok");
        std::fputs(report::formatCsv(t).c_str(), stdout);

        const double sat = Sweep::saturationRate(points, zero_load);
        log::diag(log::Level::Info, "sweep.done",
                  log::strf("# zero-load latency: %.2f cycles; "
                            "saturation (2x zero-load): %s\n",
                            zero_load,
                            sat < 0 ? "beyond swept range"
                                    : report::fmt(sat, 3).c_str()),
                  {log::num("zero_load_cycles", zero_load),
                   log::num("saturation_rate", sat)});

        // Failure isolation: every healthy point above still printed;
        // failed points carry their diagnosis (and forensics on
        // stderr) and flip the exit code.
        for (const auto& p : points) {
            if (!p.failure)
                continue;
            log::diag(log::Level::Error, "sweep.point_failed",
                      log::strf("orion_sweep: rate %.4f failed (%s): "
                                "%s\n",
                                p.injectionRate,
                                stopReasonName(p.failure->reason),
                                p.failure->message.c_str()),
                      {log::num("rate", p.injectionRate),
                       log::str("reason",
                                stopReasonName(p.failure->reason))});
            if (!p.failure->forensicsJson.empty())
                log::rawStderr(p.failure->forensicsJson);
        }
        return any_failed ? 3 : 0;
    } catch (const std::exception& e) {
        log::diag(log::Level::Error, "sweep.error",
                  log::strf("%s\n", e.what()));
        return 1;
    }
}
