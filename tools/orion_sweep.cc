/**
 * @file
 * orion_sweep — injection-rate sweep driver.
 *
 * Runs the same configuration across a range of injection rates and
 * emits one CSV row per point (the series behind latency/power vs.
 * load figures), plus the measured zero-load latency and the paper's
 * 2x-zero-load saturation point. Accepts all orion_sim options, plus:
 *
 *   --rates FIRST:LAST:COUNT   evenly spaced rates (default
 *                              0.01:0.20:10)
 *   --seeds N                  average each point over N seeds and
 *                              report the latency spread
 *   --metrics-dir DIR          write each point's sampled time series
 *                              to DIR/point_NNN.csv (with --seeds N>1:
 *                              DIR/seed_K/point_NNN.csv per seed)
 *   --trace-dir DIR            write each point's Chrome trace JSON
 *                              to DIR/point_NNN.json (per-seed
 *                              subdirectories with --seeds N>1)
 *
 * Example:
 *   orion_sweep --preset vc64 --rates 0.02:0.18:9 --seeds 3 > vc64.csv
 */

#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/cli.hh"
#include "core/report.hh"
#include "core/sweep.hh"

using namespace orion;

namespace {

/** DIR/point_NNN.EXT for sweep point @p i. */
std::string
pointPath(const std::string& dir, std::size_t i, const char* ext)
{
    char name[32];
    std::snprintf(name, sizeof name, "point_%03zu.%s", i, ext);
    return (std::filesystem::path(dir) / name).string();
}

/** DIR/seed_K for seed @p k of a multi-seed sweep. */
std::string
seedDir(const std::string& dir, unsigned k)
{
    char name[24];
    std::snprintf(name, sizeof name, "seed_%u", k);
    return (std::filesystem::path(dir) / name).string();
}

void
writeFile(const std::string& path, const std::string& content)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw std::runtime_error("orion_sweep: cannot open '" + path +
                                 "' for writing");
    out << content;
}

} // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    std::vector<double> rates = Sweep::linspace(0.01, 0.20, 10);
    unsigned seeds = 1;
    std::string metrics_dir;
    std::string trace_dir;

    // Extract the sweep-only options, pass the rest to the shared
    // parser.
    std::vector<std::string> rest;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--rates" || args[i] == "--seeds" ||
            args[i] == "--metrics-dir" || args[i] == "--trace-dir") {
            const std::string opt = args[i];
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "orion_sweep: %s: missing value\n",
                             opt.c_str());
                return 1;
            }
            try {
                if (opt == "--rates")
                    rates = cli::parseRateSpec(args[++i]);
                else if (opt == "--seeds")
                    seeds = static_cast<unsigned>(
                        std::stoul(args[++i]));
                else if (opt == "--metrics-dir")
                    metrics_dir = args[++i];
                else
                    trace_dir = args[++i];
            } catch (const std::exception& e) {
                std::fprintf(stderr, "orion_sweep: bad %s: %s\n",
                             opt.c_str(), e.what());
                return 1;
            }
        } else {
            rest.push_back(args[i]);
        }
    }
    if (seeds < 1) {
        std::fprintf(stderr, "orion_sweep: --seeds must be >= 1\n");
        return 1;
    }

    try {
        const cli::Options opts = cli::parse(rest);
        if (opts.helpRequested) {
            std::fputs(cli::usage().c_str(), stdout);
            std::fputs("\nsweep:\n  --rates FIRST:LAST:COUNT   "
                       "evenly spaced rates (default 0.01:0.20:10)\n"
                       "  --seeds N                  average each point "
                       "over N seeds\n"
                       "  --metrics-dir DIR          per-point metric "
                       "CSVs (DIR/point_NNN.csv;\n"
                       "                             DIR/seed_K/... "
                       "with --seeds N>1)\n"
                       "  --trace-dir DIR            per-point Chrome "
                       "traces (DIR/point_NNN.json;\n"
                       "                             per-seed subdirs "
                       "with --seeds N>1)\n",
                       stdout);
            return 0;
        }

        const double zero_load = Sweep::zeroLoadLatency(
            opts.network, opts.traffic, opts.sim);
        const SweepOptions sweep_opts{opts.jobs};

        // Per-point telemetry export: the dir options imply the same
        // telemetry defaults --metrics-out/--trace-out do in
        // orion_sim. Telemetry stays off in parallel sweeps unless
        // explicitly requested here.
        SimConfig sim_cfg = opts.sim;
        if (!metrics_dir.empty()) {
            if (sim_cfg.telemetry.sampleInterval == 0)
                sim_cfg.telemetry.sampleInterval = 1000;
            std::filesystem::create_directories(metrics_dir);
        }
        if (!trace_dir.empty()) {
            sim_cfg.telemetry.traceEnabled = true;
            std::filesystem::create_directories(trace_dir);
        }

        if (seeds > 1) {
            const auto points = Sweep::overRatesAveraged(
                opts.network, opts.traffic, sim_cfg, rates, seeds,
                sweep_opts);

            // Multi-seed telemetry lands in per-seed subdirectories:
            // DIR/seed_K/point_NNN.{csv,json} (failed seeds captured
            // nothing and are skipped).
            for (unsigned k = 0; k < seeds; ++k) {
                if (!metrics_dir.empty())
                    std::filesystem::create_directories(
                        seedDir(metrics_dir, k));
                if (!trace_dir.empty())
                    std::filesystem::create_directories(
                        seedDir(trace_dir, k));
            }
            for (std::size_t i = 0; i < points.size(); ++i) {
                const auto& p = points[i];
                for (unsigned k = 0; k < seeds; ++k) {
                    if (!metrics_dir.empty() &&
                        !p.metricsCsvBySeed[k].empty()) {
                        writeFile(pointPath(seedDir(metrics_dir, k),
                                            i, "csv"),
                                  p.metricsCsvBySeed[k]);
                    }
                    if (!trace_dir.empty() &&
                        !p.traceJsonBySeed[k].empty()) {
                        writeFile(pointPath(seedDir(trace_dir, k), i,
                                            "json"),
                                  p.traceJsonBySeed[k]);
                    }
                }
            }
            report::Table t;
            t.headers = {"rate",        "completed",   "latency_mean",
                         "latency_min", "latency_max", "throughput",
                         "power_w",     "failed_seeds"};
            unsigned failed = 0;
            for (const auto& p : points) {
                failed += p.failedSeeds;
                t.addRow({
                    report::fmt(p.injectionRate, 4),
                    p.allCompleted ? "1" : "0",
                    report::fmt(p.meanLatency, 3),
                    report::fmt(p.minLatency, 3),
                    report::fmt(p.maxLatency, 3),
                    report::fmt(p.meanThroughput, 4),
                    report::fmt(p.meanPowerWatts, 4),
                    std::to_string(p.failedSeeds),
                });
            }
            std::fputs(report::formatCsv(t).c_str(), stdout);
            std::fprintf(stderr,
                         "# zero-load latency: %.2f cycles; %u seeds "
                         "per point\n",
                         zero_load, seeds);
            if (failed > 0) {
                for (const auto& p : points) {
                    if (p.failedSeeds == 0)
                        continue;
                    std::fprintf(
                        stderr,
                        "orion_sweep: rate %.4f: %u of %u seeds "
                        "failed: %s\n",
                        p.injectionRate, p.failedSeeds, p.seeds,
                        p.firstFailure.c_str());
                }
                return 3;
            }
            return 0;
        }

        const auto points = Sweep::overRates(
            opts.network, opts.traffic, sim_cfg, rates, sweep_opts);

        for (std::size_t i = 0; i < points.size(); ++i) {
            if (!metrics_dir.empty())
                writeFile(pointPath(metrics_dir, i, "csv"),
                          points[i].metricsCsv);
            if (!trace_dir.empty())
                writeFile(pointPath(trace_dir, i, "json"),
                          points[i].traceJson);
        }

        report::Table t;
        t.headers = {"rate",    "completed", "latency", "p95",
                     "throughput", "power_w", "buffer_w", "crossbar_w",
                     "arbiter_w",  "link_w",  "status"};
        for (const auto& p : points) {
            const Report& r = p.report;
            t.addRow({
                report::fmt(p.injectionRate, 4),
                r.completed ? "1" : "0",
                report::fmt(r.avgLatencyCycles, 3),
                report::fmt(r.p95LatencyCycles, 0),
                report::fmt(r.acceptedFlitsPerNodePerCycle, 4),
                report::fmt(r.networkPowerWatts, 4),
                report::fmt(r.breakdownWatts.buffer, 4),
                report::fmt(r.breakdownWatts.crossbar, 4),
                report::fmt(r.breakdownWatts.arbiter, 5),
                report::fmt(r.breakdownWatts.link, 4),
                stopReasonName(r.stopReason),
            });
        }
        std::fputs(report::formatCsv(t).c_str(), stdout);

        const double sat = Sweep::saturationRate(points, zero_load);
        std::fprintf(stderr,
                     "# zero-load latency: %.2f cycles; saturation "
                     "(2x zero-load): %s\n",
                     zero_load,
                     sat < 0 ? "beyond swept range"
                             : report::fmt(sat, 3).c_str());

        // Failure isolation: every healthy point above still printed;
        // failed points carry their diagnosis (and forensics on
        // stderr) and flip the exit code.
        bool any_failed = false;
        for (const auto& p : points) {
            if (!p.failure)
                continue;
            any_failed = true;
            std::fprintf(stderr,
                         "orion_sweep: rate %.4f failed (%s): %s\n",
                         p.injectionRate,
                         stopReasonName(p.failure->reason),
                         p.failure->message.c_str());
            if (!p.failure->forensicsJson.empty())
                std::fputs(p.failure->forensicsJson.c_str(), stderr);
        }
        return any_failed ? 3 : 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
