#!/usr/bin/env python3
"""Live status for a running Orion sweep, from its heartbeat file.

orion_sweep --heartbeat FILE atomically replaces FILE (tmp + rename)
about once a second with an "orion-heartbeat-v1" JSON snapshot:
totals, ETA, and the cells each worker slot is simulating right now.
This tool renders that snapshot without touching the sweep process —
run it in a second terminal (docs/EXPERIMENTS.md, "Watching a long
sweep"):

  orion_status.py /path/to/hb.json            # live dashboard
  orion_status.py /path/to/hb.json --once     # one JSON line, exit
  orion_status.py hb.json --manifest run.manifest.json

Because replacement is atomic, a reader never sees a torn file while
the writer is alive; after SIGKILL the last completed snapshot
survives. A missing or unparseable file is reported, not crashed on
(exit 1 with --once; retried forever in live mode).

Exit status: 0 when the heartbeat was read (live mode: the run
finished or Ctrl-C), 1 when --once could not produce a summary, 2 on
usage errors.
"""

import argparse
import json
import sys
import time
from pathlib import Path


def read_heartbeat(path):
    """Parse the heartbeat; returns (dict, None) or (None, reason)."""
    try:
        raw = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError:
        return None, "missing"
    except OSError as e:
        return None, f"unreadable: {e}"
    try:
        hb = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None, "torn or not JSON"
    if not isinstance(hb, dict):
        return None, "not a JSON object"
    if hb.get("schema") != "orion-heartbeat-v1":
        return None, f"unexpected schema {hb.get('schema')!r}"
    return hb, None


def read_manifest(path):
    """Best-effort manifest parse; None when absent or malformed."""
    if not path:
        return None
    try:
        m = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    return m if isinstance(m, dict) else None


def fmt_eta(eta_s):
    if eta_s is None or eta_s < 0:
        return "--"
    if eta_s < 120:
        return f"{eta_s:.0f}s"
    if eta_s < 7200:
        return f"{eta_s / 60.0:.1f}m"
    return f"{eta_s / 3600.0:.1f}h"


def staleness(hb, now):
    updated = hb.get("updated_unix_s")
    if not isinstance(updated, (int, float)):
        return None
    return max(0.0, now - updated)


def summarize(hb, now, stale_after):
    """The --once JSON summary (also the live mode's data source)."""
    stale_s = staleness(hb, now)
    done = hb.get("done", 0)
    total = hb.get("total", 0)
    return {
        "ok": True,
        "label": hb.get("label", "?"),
        "pid": hb.get("pid"),
        "done": done,
        "total": total,
        "failed": hb.get("failed", 0),
        "from_checkpoint": hb.get("from_checkpoint", 0),
        "jobs": hb.get("jobs"),
        "finished": bool(hb.get("finished", False)),
        "eta_s": hb.get("eta_s"),
        "ema_point_s": hb.get("ema_point_s"),
        "workers_active": len(hb.get("workers", [])),
        "stale_s": None if stale_s is None else round(stale_s, 3),
        # A dead writer leaves finished=false and a growing stale_s;
        # flag it so scripts can tell "running" from "killed".
        "presumed_dead": bool(
            not hb.get("finished", False)
            and stale_s is not None and stale_s > stale_after),
    }


def render(hb, manifest, now, stale_after):
    """Human lines for the live dashboard."""
    s = summarize(hb, now, stale_after)
    pct = 100.0 * s["done"] / s["total"] if s["total"] else 0.0
    lines = []
    state = "finished" if s["finished"] else (
        "STALLED/DEAD?" if s["presumed_dead"] else "running")
    lines.append(
        f"{s['label']} (pid {s['pid']}): {state}  "
        f"{s['done']}/{s['total']} done ({pct:.0f}%), "
        f"{s['failed']} failed, {s['from_checkpoint']} from checkpoint, "
        f"ETA {fmt_eta(s['eta_s'])}")
    if s["stale_s"] is not None:
        lines.append(f"  heartbeat age {s['stale_s']:.1f}s, "
                     f"jobs {s['jobs']}, "
                     f"ema point {hb.get('ema_point_s') or '--'}s")
    for w in hb.get("workers", []):
        lines.append(
            f"  slot {w.get('slot')}: rate_index {w.get('rate_index')} "
            f"seed {w.get('seed_index')} attempt {w.get('attempt')} — "
            f"{w.get('cycles'):,} cycles, {w.get('running_s'):.1f}s")
    if manifest:
        build = manifest.get("build", {})
        lines.append(
            f"  manifest: {manifest.get('tool')} "
            f"fingerprint {manifest.get('fingerprint')} "
            f"[{build.get('compiler', '?')} {build.get('git_sha', '?')}]")
    return lines


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("heartbeat", help="heartbeat JSON file "
                                      "(orion_sweep --heartbeat)")
    ap.add_argument("--manifest", default=None,
                    help="also show the run manifest JSON")
    ap.add_argument("--once", action="store_true",
                    help="print one machine-readable JSON summary "
                         "line and exit")
    ap.add_argument("--interval", type=float, default=1.0,
                    help="live refresh period in seconds (default 1)")
    ap.add_argument("--stale-after", type=float, default=10.0,
                    help="seconds without an update before the writer "
                         "is presumed dead (default 10)")
    args = ap.parse_args(argv)
    if args.interval <= 0 or args.stale_after <= 0:
        ap.error("--interval and --stale-after must be positive")

    if args.once:
        hb, reason = read_heartbeat(args.heartbeat)
        if hb is None:
            print(json.dumps({"ok": False, "error": reason,
                              "path": args.heartbeat}))
            return 1
        print(json.dumps(summarize(hb, time.time(),
                                   args.stale_after)))
        return 0

    manifest = read_manifest(args.manifest)
    try:
        while True:
            hb, reason = read_heartbeat(args.heartbeat)
            if hb is None:
                print(f"[{args.heartbeat}: {reason}; retrying]",
                      file=sys.stderr)
            else:
                if manifest is None:
                    manifest = read_manifest(args.manifest)
                print("\n".join(render(hb, manifest, time.time(),
                                       args.stale_after)))
                if hb.get("finished"):
                    return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
