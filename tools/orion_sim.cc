/**
 * @file
 * orion_sim — the command-line simulator driver.
 *
 * Builds a network from presets and/or individual options, runs the
 * paper's warm-up/sample/drain protocol, and prints the
 * power-performance report (text or CSV). Examples:
 *
 *   orion_sim --preset vc64 --rate 0.10
 *   orion_sim --dims 8x8 --vcs 4 --buffer 8 --deadlock bubble \
 *             --pattern hotspot --hotspot 27 --rate 0.03 --csv
 *   orion_sim --preset cb --pattern trace --trace workload.txt
 *
 * Exit codes (documented in docs/ROBUSTNESS.md):
 *   0  run completed (or hit the cycle cap without incident)
 *   1  usage error or unexpected exception
 *   2  run finished but a deadlock was suspected
 *   3  a runtime check failed (diagnostic on stderr)
 *   4  output I/O failure (--metrics-out / --trace-out / stdout;
 *      disk full, closed pipe...)
 *   5  interrupted by SIGINT/SIGTERM (stopped cooperatively)
 *   6  --point-timeout deadline expired (stopped cooperatively)
 */

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/cancel.hh"
#include "core/checkpoint.hh"
#include "core/cli.hh"
#include "core/forensics.hh"
#include "core/log.hh"
#include "core/manifest.hh"

namespace {

namespace log = orion::core::log;

/** Attach the structured log sink: environment first, flags win. */
void
configureLogger(const orion::cli::Options& opts)
{
    log::configureFromEnv();
    if (!opts.logOut.empty()) {
        log::Level level = log::Level::Info;
        log::parseLevel(opts.logLevel, level);
        log::configure(opts.logOut, level);
    }
}

/** 16-hex-char rendering of a sweep fingerprint. */
std::string
fingerprintHex(std::uint64_t fp)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(fp));
    return buf;
}

/** An output-stream failure (exit 4): the run itself was healthy, the
 * results could not be delivered. */
class IoError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

void
writeFile(const std::string& path, const std::string& content)
{
    errno = 0;
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        throw IoError("orion_sim: cannot open '" + path +
                      "' for writing: " + std::strerror(errno));
    }
    out << content;
    out.flush();
    out.close();
    // badbit/failbit after flush+close covers ENOSPC, EPIPE on a
    // FIFO, quota errors... anything the kernel only reports on
    // write-back.
    if (!out) {
        throw IoError("orion_sim: i/o error writing '" + path +
                      "' (disk full or stream closed?)");
    }
}

/**
 * The machine-mergeable report line for --report-out: the checkpoint
 * entry wire format, with the failure triage mirroring what the
 * in-process sweep records — so `orion_sweep --isolate` merges a
 * worker's result bit-identically with an in-process run.
 * Coordinates are written as (0, 0); the parent rewrites them.
 */
orion::core::CheckpointEntry
reportEntry(orion::Simulation& simulation, const orion::Report& report)
{
    using orion::StopReason;
    orion::core::CheckpointEntry e;
    e.report = report;
    switch (report.stopReason) {
    case StopReason::CheckFailure:
        e.failed = true;
        e.failureReason = StopReason::CheckFailure;
        e.failureMessage = report.checkFailureDiagnostic;
        e.failureForensics = orion::forensicSnapshot(
            simulation, report.checkFailureDiagnostic);
        break;
    case StopReason::Deadline:
        e.failed = true;
        e.failureReason = StopReason::Deadline;
        e.failureMessage = "point exceeded its deadline after " +
                           std::to_string(report.totalCycles) +
                           " cycles";
        e.failureForensics =
            orion::forensicSnapshot(simulation,
                                    "point deadline expired");
        break;
    case StopReason::Interrupted:
        e.failed = true;
        e.failureReason = StopReason::Interrupted;
        e.failureMessage = "interrupted mid-run (SIGINT/SIGTERM)";
        break;
    default:
        break;
    }
    return e;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace orion;

    std::vector<std::string> args(argv + 1, argv + argc);
    try {
        cli::Options opts = cli::parse(args);
        if (opts.helpRequested) {
            std::fputs(cli::usage().c_str(), stdout);
            return 0;
        }
        configureLogger(opts);

        core::RunManifest manifest =
            core::RunManifest::begin("orion_sim");
        manifest.fingerprintHex = fingerprintHex(core::sweepFingerprint(
            opts.network, opts.traffic, opts.sim,
            {opts.traffic.injectionRate}, 1));
        manifest.seed = opts.sim.seed;
        manifest.pointsTotal = 1;
        log::event(log::Level::Info, "sim.start",
                   {log::str("fingerprint", manifest.fingerprintHex),
                    log::u64("seed", opts.sim.seed),
                    log::num("rate", opts.traffic.injectionRate)});

        // A closed downstream pipe must surface as a write error
        // (exit 4), not a silent SIGPIPE death.
        std::signal(SIGPIPE, SIG_IGN);
        core::installInterruptHandlers();
        core::CancelToken token(&core::interruptToken());
        if (opts.pointTimeoutSeconds > 0.0)
            token.armDeadline(opts.pointTimeoutSeconds);
        opts.sim.cancel = &token;

        Simulation simulation(opts.network, opts.traffic, opts.sim);
        const Report report = simulation.run();

        const bool run_failed =
            report.stopReason == StopReason::CheckFailure ||
            report.stopReason == StopReason::Deadline ||
            report.stopReason == StopReason::Interrupted;
        manifest.pointsCompleted = run_failed ? 0 : 1;
        manifest.pointsFailed = run_failed ? 1 : 0;
        if (const core::PhaseProfiler* pp = simulation.phaseProfiler())
            manifest.phases = pp->shares();
        manifest.finish(stopReasonName(report.stopReason));
        if (!opts.manifestOut.empty())
            core::writeFileAtomic(opts.manifestOut, manifest.toJson());
        log::event(log::Level::Info, "sim.done",
                   {log::str("stop_reason",
                             stopReasonName(report.stopReason)),
                    log::u64("cycles", report.totalCycles),
                    log::num("latency_cycles",
                             report.avgLatencyCycles),
                    log::num("power_w", report.networkPowerWatts)});

        if (!opts.metricsOut.empty())
            writeFile(opts.metricsOut, simulation.metricsCsv());
        if (!opts.traceOut.empty())
            writeFile(opts.traceOut, simulation.traceJson("orion_sim"));
        if (!opts.reportOut.empty()) {
            writeFile(opts.reportOut,
                      core::serializeEntry(
                          reportEntry(simulation, report)) +
                          "\n");
        }

        const std::string out = opts.csv
                                    ? cli::formatCsvReport(opts, report)
                                    : cli::formatReport(opts, report);
        std::fputs(out.c_str(), stdout);
        if (std::fflush(stdout) != 0 || std::ferror(stdout)) {
            log::diag(log::Level::Error, "sim.io_error",
                      "orion_sim: i/o error writing the report to "
                      "stdout\n");
            return 4;
        }
        switch (report.stopReason) {
        case StopReason::CheckFailure:
            log::diag(log::Level::Error, "sim.check_failure",
                      log::strf("orion_sim: check failure: %s\n",
                                report.checkFailureDiagnostic.c_str()));
            return 3;
        case StopReason::Interrupted:
            log::diag(log::Level::Warn, "sim.interrupted",
                      log::strf("orion_sim: interrupted (signal %d); "
                                "partial report above\n",
                                core::interruptSignal()));
            return 5;
        case StopReason::Deadline:
            log::diag(log::Level::Warn, "sim.deadline",
                      log::strf("orion_sim: --point-timeout expired "
                                "after %llu cycles; partial report "
                                "above\n",
                                static_cast<unsigned long long>(
                                    report.totalCycles)));
            return 6;
        default:
            return report.deadlockSuspected ? 2 : 0;
        }
    } catch (const IoError& e) {
        log::diag(log::Level::Error, "sim.io_error",
                  log::strf("%s\n", e.what()));
        return 4;
    } catch (const std::exception& e) {
        log::diag(log::Level::Error, "sim.error",
                  log::strf("%s\n", e.what()));
        return 1;
    }
}
