/**
 * @file
 * orion_sim — the command-line simulator driver.
 *
 * Builds a network from presets and/or individual options, runs the
 * paper's warm-up/sample/drain protocol, and prints the
 * power-performance report (text or CSV). Examples:
 *
 *   orion_sim --preset vc64 --rate 0.10
 *   orion_sim --dims 8x8 --vcs 4 --buffer 8 --deadlock bubble \
 *             --pattern hotspot --hotspot 27 --rate 0.03 --csv
 *   orion_sim --preset cb --pattern trace --trace workload.txt
 */

#include <cstdio>
#include <exception>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/cli.hh"

namespace {

void
writeFile(const std::string& path, const std::string& content)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw std::runtime_error("orion_sim: cannot open '" + path +
                                 "' for writing");
    out << content;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace orion;

    std::vector<std::string> args(argv + 1, argv + argc);
    try {
        const cli::Options opts = cli::parse(args);
        if (opts.helpRequested) {
            std::fputs(cli::usage().c_str(), stdout);
            return 0;
        }

        Simulation simulation(opts.network, opts.traffic, opts.sim);
        const Report report = simulation.run();

        if (!opts.metricsOut.empty())
            writeFile(opts.metricsOut, simulation.metricsCsv());
        if (!opts.traceOut.empty())
            writeFile(opts.traceOut, simulation.traceJson("orion_sim"));

        const std::string out = opts.csv
                                    ? cli::formatCsvReport(opts, report)
                                    : cli::formatReport(opts, report);
        std::fputs(out.c_str(), stdout);
        if (report.stopReason == StopReason::CheckFailure) {
            std::fprintf(stderr, "orion_sim: check failure: %s\n",
                         report.checkFailureDiagnostic.c_str());
            return 3;
        }
        return report.deadlockSuspected ? 2 : 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
