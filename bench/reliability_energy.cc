/**
 * @file
 * Reliability vs. energy: what link bit errors cost in delivered
 * energy per flit.
 *
 * The paper's models charge energy for every link traversal and
 * buffer access, whether or not the flit ultimately survives. With
 * fault injection enabled, a corrupted flit is discarded at the
 * receiving router and the whole packet is retransmitted from the
 * source — so every bit error turns into extra link traversals,
 * buffer writes, and arbitrations that the power models bill as
 * usual. This harness sweeps the per-bit link error rate and reports
 * the retransmission overhead and the resulting energy-per-delivered-
 * flit inflation (the reliability tax).
 *
 * Recipe documented in EXPERIMENTS.md ("Reliability vs. energy").
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"

int
main()
{
    using namespace orion;
    using namespace orion::bench;

    SimConfig sim = defaultSimConfig();
    sim.samplePackets =
        std::min<std::uint64_t>(sim.samplePackets, 4000);

    const NetworkConfig network = NetworkConfig::vc16();
    TrafficConfig traffic;
    traffic.injectionRate = 0.05;

    const std::vector<double> bers = {0.0,    1e-7, 5e-7,
                                      1e-6,   5e-6, 1e-5};

    std::printf("Reliability vs. energy — 4x4 torus VC routers, "
                "uniform traffic at 0.05 pkts/cycle/node\n");
    std::printf("link bit errors force source retransmission; every "
                "retry pays full link/buffer/arbiter energy\n\n");

    report::Table t;
    t.headers = {"link BER",      "status",     "retransmitted",
                 "packets lost",  "latency",    "energy/flit (pJ)",
                 "overhead"};

    double baseline = 0.0;
    for (const double ber : bers) {
        SimConfig s = sim;
        s.fault.linkBitErrorRate = ber;
        Simulation run(network, traffic, s);
        const Report r = run.run();

        const double epf = r.energyPerFlitJoules * 1e12;
        if (ber == 0.0)
            baseline = epf;
        const std::string overhead =
            baseline > 0.0
                ? report::fmt(100.0 * (epf / baseline - 1.0), 1) + " %"
                : std::string("-");
        t.addRow({
            report::fmt(ber, 8),
            stopReasonName(r.stopReason),
            std::to_string(r.packetsRetransmitted),
            std::to_string(r.packetsLost),
            latencyCell(r),
            report::fmt(epf, 2),
            overhead,
        });
    }
    std::printf("%s", report::formatTable(t).c_str());
    std::printf("\nEnergy per delivered flit climbs with BER: "
                "retransmitted worms repeat every hop's buffer\n"
                "write, arbitration, crossbar traversal, and link "
                "toggle, but only the final attempt delivers\n"
                "payload — reliability is bought with the same joules "
                "the paper's models meter.\n");
    return 0;
}
