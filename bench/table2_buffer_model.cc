/**
 * @file
 * Table 2 reproduction: the FIFO buffer power model.
 *
 * Prints, for a sweep of buffer configurations (including every input
 * buffer the paper's case studies use), the Table 2 quantities:
 * wordline/bitline lengths, all five capacitances, and the derived
 * per-operation energies E_read / E_wrt.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/report.hh"
#include "power/buffer_model.hh"
#include "tech/tech_node.hh"

int
main()
{
    using namespace orion;
    using orion::report::fmt;
    using orion::report::fmtEng;

    const tech::TechNode tech = tech::TechNode::onChip100nm();

    struct Config
    {
        const char* name;
        power::BufferParams params;
    };
    const std::vector<Config> configs = {
        {"walkthrough 4x32", {4, 32, 1, 1}},
        {"VC16 port buffer 16x256", {16, 256, 1, 1}},
        {"VC64 port buffer 64x256", {64, 256, 1, 1}},
        {"VC128 port buffer 128x256", {128, 256, 1, 1}},
        {"WH64 port buffer 64x256", {64, 256, 1, 1}},
        {"XB VC buffer 4288x32", {4288, 32, 1, 1}},
        {"CB input FIFO 64x32", {64, 32, 1, 1}},
        {"CB bank 2560x32 2R2W", {2560, 32, 2, 2}},
    };

    std::printf("Table 2 — FIFO buffer power model "
                "(0.1 um, Vdd = %.1f V)\n\n",
                tech.vdd);

    report::Table t;
    t.headers = {"configuration", "B",     "F",    "L_wl",  "L_bl",
                 "C_wl",          "C_br",  "C_bw", "C_chg", "C_cell",
                 "E_read",        "E_wrt(avg)", "area"};
    for (const auto& c : configs) {
        const power::BufferModel m(tech, c.params);
        t.addRow({
            c.name,
            std::to_string(c.params.flits),
            std::to_string(c.params.flitBits),
            fmt(m.wordlineLengthUm(), 0) + " um",
            fmt(m.bitlineLengthUm(), 0) + " um",
            fmtEng(m.wordlineCap(), "F", 1),
            fmtEng(m.readBitlineCap(), "F", 1),
            fmtEng(m.writeBitlineCap(), "F", 1),
            fmtEng(m.prechargeCap(), "F", 1),
            fmtEng(m.cellCap(), "F", 1),
            fmtEng(m.readEnergy(), "J", 2),
            fmtEng(m.avgWriteEnergy(), "J", 2),
            fmt(m.areaUm2() / 1e6, 3) + " mm2",
        });
    }
    std::printf("%s\n", report::formatTable(t).c_str());

    // Scaling behaviour: E_read growth with depth at fixed width, the
    // relationship the WH64-vs-VC16 power comparison rides on.
    report::Table s;
    s.title = "E_read scaling with buffer depth (F = 256)";
    s.headers = {"B (flits)", "E_read", "E_wrt(avg)"};
    for (const unsigned b : {8u, 16u, 32u, 64u, 128u, 256u}) {
        const power::BufferModel m(tech, {b, 256, 1, 1});
        s.addRow({std::to_string(b), fmtEng(m.readEnergy(), "J", 2),
                  fmtEng(m.avgWriteEnergy(), "J", 2)});
    }
    std::printf("%s", report::formatTable(s).c_str());
    return 0;
}
