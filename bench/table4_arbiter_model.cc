/**
 * @file
 * Table 4 reproduction: arbiter power models.
 *
 * Prints matrix-arbiter capacitances (C_req, C_gnt, C_pri, C_int) and
 * per-arbitration energies — with and without the crossbar control
 * line that the Appendix folds into E_arb — plus the round-robin and
 * queuing alternatives the paper also models.
 */

#include <cstdio>
#include <string>

#include "core/report.hh"
#include "power/arbiter_model.hh"
#include "power/crossbar_model.hh"
#include "tech/tech_node.hh"

int
main()
{
    using namespace orion;
    using orion::report::fmtEng;

    const tech::TechNode tech = tech::TechNode::onChip100nm();
    const power::CrossbarModel xbar(
        tech, {5, 5, 256, power::CrossbarKind::Matrix, 0.0});

    std::printf("Table 4 — arbiter power models "
                "(0.1 um, Vdd = %.1f V)\n",
                tech.vdd);
    std::printf("E_arb includes E_xb_ctr (%s) when the arbiter drives "
                "the 5x5x256 crossbar\n\n",
                fmtEng(xbar.controlEnergy(), "J", 2).c_str());

    const auto kindName = [](power::ArbiterKind k) {
        switch (k) {
          case power::ArbiterKind::Matrix:     return "matrix";
          case power::ArbiterKind::RoundRobin: return "round-robin";
          case power::ArbiterKind::Queuing:    return "queuing";
        }
        return "?";
    };

    report::Table t;
    t.headers = {"kind",  "R",     "pri FFs", "C_req", "C_pri",
                 "C_int", "C_gnt", "E_arb(avg)", "E_arb+xb_ctr"};
    for (const auto kind :
         {power::ArbiterKind::Matrix, power::ArbiterKind::RoundRobin,
          power::ArbiterKind::Queuing}) {
        for (const unsigned r : {2u, 4u, 8u, 16u}) {
            const power::ArbiterModel plain(tech, {r, kind, 0.0});
            const power::ArbiterModel coupled(
                tech, {r, kind, xbar.controlCap()});
            t.addRow({
                kindName(kind),
                std::to_string(r),
                std::to_string(plain.priorityFlipFlops()),
                fmtEng(plain.requestCap(), "F", 1),
                fmtEng(plain.priorityCap(), "F", 1),
                fmtEng(plain.internalCap(), "F", 1),
                fmtEng(plain.grantCap(), "F", 1),
                fmtEng(plain.avgArbitrationEnergy(), "J", 2),
                fmtEng(coupled.avgArbitrationEnergy(), "J", 2),
            });
        }
    }
    std::printf("%s", report::formatTable(t).c_str());
    return 0;
}
