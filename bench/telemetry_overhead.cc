/**
 * @file
 * Telemetry overhead benchmark: times the same injection-rate sweep
 * with telemetry disabled, with the windowed sampler at a 1000-cycle
 * interval, and with flit tracing on, then reports the overhead of
 * each mode relative to the disabled baseline. Emits machine-readable
 * BENCH_telemetry.json; tools/check.sh gates the disabled-path
 * regression on the sweep_speed benchmark and the sampled overhead on
 * this one.
 *
 * Environment knobs (on top of bench_util's usual set):
 *  - ORION_SAMPLE: packets per point (default 2000)
 *  - ORION_REPS: timing repetitions per mode, best-of (default 3)
 *  - ORION_BENCH_JSON: output path (default "BENCH_telemetry.json")
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"

namespace {

using namespace orion;
using namespace orion::bench;

using Clock = std::chrono::steady_clock;

double
timeSweep(const NetworkConfig& net, const TrafficConfig& traffic,
          const SimConfig& sim, const std::vector<double>& rates,
          unsigned reps)
{
    double best = 0.0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        const auto start = Clock::now();
        const auto points =
            Sweep::overRates(net, traffic, sim, rates, SweepOptions::withJobs(1));
        const std::chrono::duration<double> elapsed =
            Clock::now() - start;
        if (points.size() != rates.size())
            std::abort();
        if (rep == 0 || elapsed.count() < best)
            best = elapsed.count();
    }
    return best;
}

double
overheadPct(double base, double mode)
{
    return base > 0.0 ? (mode / base - 1.0) * 100.0 : 0.0;
}

} // namespace

int
main()
{
    SimConfig sim = defaultSimConfig();
    sim.samplePackets = envU64("ORION_SAMPLE", 2000);
    const unsigned reps =
        static_cast<unsigned>(envU64("ORION_REPS", 3));
    TrafficConfig traffic;
    traffic.pattern = net::TrafficPattern::UniformRandom;

    const NetworkConfig net = NetworkConfig::vc16();
    const std::vector<double> rates = Sweep::linspace(0.02, 0.08, 4);

    std::printf("Telemetry overhead — VC16, %zu rates, %llu sample "
                "packets/point, best of %u\n\n",
                rates.size(),
                static_cast<unsigned long long>(sim.samplePackets),
                reps);

    // Mode 1: telemetry fully disabled (the default hot path).
    SimConfig off = sim;
    const double t_off = timeSweep(net, traffic, off, rates, reps);

    // Mode 2: windowed sampling every 1000 cycles.
    SimConfig sampled = sim;
    sampled.telemetry.sampleInterval = 1000;
    const double t_sampled =
        timeSweep(net, traffic, sampled, rates, reps);

    // Mode 3: sampling + flit tracing (every bus event recorded).
    SimConfig traced = sampled;
    traced.telemetry.traceEnabled = true;
    const double t_traced =
        timeSweep(net, traffic, traced, rates, reps);

    const double pct_sampled = overheadPct(t_off, t_sampled);
    const double pct_traced = overheadPct(t_off, t_traced);

    report::Table t;
    t.headers = {"mode", "wall (s)", "overhead"};
    t.addRow({"disabled", report::fmt(t_off, 3), "baseline"});
    t.addRow({"sampled (1k cycles)", report::fmt(t_sampled, 3),
              report::fmt(pct_sampled, 1) + "%"});
    t.addRow({"sampled + traced", report::fmt(t_traced, 3),
              report::fmt(pct_traced, 1) + "%"});
    std::printf("%s\n", report::formatTable(t).c_str());

    const char* json_path = std::getenv("ORION_BENCH_JSON");
    const std::string path =
        json_path != nullptr ? json_path : "BENCH_telemetry.json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"benchmark\": \"telemetry_overhead\",\n"
        "  \"network\": \"vc16\",\n"
        "  \"rates\": %zu,\n"
        "  \"sample_packets_per_point\": %llu,\n"
        "  \"reps\": %u,\n"
        "  \"disabled\": { \"wall_s\": %.4f },\n"
        "  \"sampled_1k\": { \"wall_s\": %.4f, "
        "\"overhead_pct\": %.2f },\n"
        "  \"traced\": { \"wall_s\": %.4f, \"overhead_pct\": %.2f }\n"
        "}\n",
        rates.size(),
        static_cast<unsigned long long>(sim.samplePackets), reps,
        t_off, t_sampled, pct_sampled, t_traced, pct_traced);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
