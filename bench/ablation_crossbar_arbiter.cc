/**
 * @file
 * Ablation study over the design choices DESIGN.md calls out:
 *
 *  1. Crossbar implementation (matrix vs multiplexer tree) — same
 *     network, different crossbar power model.
 *  2. Arbiter style (matrix vs round-robin vs queuing) — per-op
 *     energy and network-level impact.
 *  3. Deadlock discipline (dateline vs none) on pre-saturation
 *     latency — the substitution must not distort the paper's region
 *     of interest.
 *  4. Switching-activity modeling: monitored deltas vs static 0.5
 *     average activity — the reason Orion simulates instead of using
 *     rules of thumb.
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"

int
main()
{
    using namespace orion;
    using namespace orion::bench;

    SimConfig sim = defaultSimConfig();
    sim.samplePackets = std::min<std::uint64_t>(sim.samplePackets, 4000);
    TrafficConfig traffic;
    traffic.injectionRate = 0.08;

    // 1. Crossbar kind.
    {
        report::Table t;
        t.title = "ablation 1 — crossbar implementation (VC64, rate "
                  "0.08)";
        t.headers = {"crossbar", "latency (cyc)", "network power (W)",
                     "crossbar power (W)"};
        for (const auto kind : {power::CrossbarKind::Matrix,
                                power::CrossbarKind::MuxTree}) {
            NetworkConfig cfg = NetworkConfig::vc64();
            cfg.crossbarKind = kind;
            Simulation s(cfg, traffic, sim);
            const Report r = s.run();
            t.addRow({kind == power::CrossbarKind::Matrix ? "matrix"
                                                          : "mux-tree",
                      report::fmt(r.avgLatencyCycles, 1),
                      report::fmt(r.networkPowerWatts, 2),
                      report::fmt(r.breakdownWatts.crossbar, 2)});
        }
        std::printf("%s\n", report::formatTable(t).c_str());
    }

    // 2. Arbiter kind.
    {
        report::Table t;
        t.title = "ablation 2 — arbiter style (VC64, rate 0.08)";
        t.headers = {"arbiter", "arbiter power (W)",
                     "share of network power"};
        for (const auto kind :
             {router::ArbiterKind::Matrix,
              router::ArbiterKind::RoundRobin,
              router::ArbiterKind::Queuing}) {
            NetworkConfig cfg = NetworkConfig::vc64();
            cfg.net.arbiterKind = kind;
            Simulation s(cfg, traffic, sim);
            const Report r = s.run();
            const char* name =
                kind == router::ArbiterKind::Matrix       ? "matrix"
                : kind == router::ArbiterKind::RoundRobin ? "round-robin"
                                                          : "queuing";
            t.addRow({name, report::fmt(r.breakdownWatts.arbiter, 4),
                      report::fmt(100.0 * r.breakdownWatts.arbiter /
                                      r.networkPowerWatts,
                                  2) + " %"});
        }
        std::printf("%s\n", report::formatTable(t).c_str());
    }

    // 3. Deadlock discipline, pre-saturation.
    {
        report::Table t;
        t.title = "ablation 3 — torus deadlock discipline (VC16, "
                  "pre-saturation)";
        t.headers = {"mode", "rate", "latency (cyc)", "power (W)"};
        for (const double rate : {0.04, 0.08}) {
            for (const auto mode : {router::DeadlockMode::Dateline,
                                    router::DeadlockMode::None}) {
                NetworkConfig cfg = NetworkConfig::vc16();
                cfg.net.deadlock = mode;
                TrafficConfig tr;
                tr.injectionRate = rate;
                Simulation s(cfg, tr, sim);
                const Report r = s.run();
                t.addRow({mode == router::DeadlockMode::Dateline
                              ? "dateline"
                              : "none",
                          rateLabel(rate), latencyCell(r),
                          powerCell(r)});
            }
        }
        std::printf("%s\n", report::formatTable(t).c_str());
    }

    // 4. Monitored vs static switching activity.
    {
        NetworkConfig cfg = NetworkConfig::vc64();
        Simulation s(cfg, traffic, sim);
        const Report r = s.run();

        // Static estimate: event counts x average-activity energies.
        auto& mon = s.monitor();
        const auto& m = mon.models();
        const auto count = [&](sim::EventType ty) {
            return static_cast<double>(mon.eventCount(ty));
        };
        const double cycles = static_cast<double>(r.measuredCycles);
        const double f = cfg.tech.freqHz;
        const double static_power =
            (count(sim::EventType::BufferWrite) *
                 m.buffer->avgWriteEnergy() +
             count(sim::EventType::BufferRead) *
                 m.buffer->readEnergy() +
             count(sim::EventType::Arbitration) *
                 m.switchArbiter->avgArbitrationEnergy() +
             count(sim::EventType::VcAllocation) *
                 m.vcArbiter->avgArbitrationEnergy() +
             count(sim::EventType::CrossbarTraversal) *
                 m.crossbar->avgTraversalEnergy() +
             count(sim::EventType::LinkTraversal) *
                 m.onChipLink->avgTraversalEnergy()) *
            f / cycles;

        report::Table t;
        t.title = "ablation 4 — monitored vs static (0.5) switching "
                  "activity (VC64, rate 0.08)";
        t.headers = {"method", "network power (W)"};
        t.addRow({"monitored deltas (Orion)",
                  report::fmt(r.networkPowerWatts, 2)});
        t.addRow({"static avg activity", report::fmt(static_power, 2)});
        std::printf("%s", report::formatTable(t).c_str());
        std::printf("(random payloads make these agree; correlated "
                    "traffic data would separate them — that is why "
                    "Orion monitors deltas)\n");
    }
    return 0;
}
