/**
 * @file
 * Power-model evaluation microbenchmarks (google-benchmark).
 *
 * The paper's pitch against RTL-level tools: "our architectural-level
 * power simulator takes on the order of minutes" — which requires the
 * per-event model evaluations to be near-free. These benchmarks
 * measure the per-call cost of each Table 2-4 model, plus model
 * construction (done once per configuration).
 */

#include <benchmark/benchmark.h>

#include "power/arbiter_model.hh"
#include "power/buffer_model.hh"
#include "power/central_buffer_model.hh"
#include "power/crossbar_model.hh"
#include "power/link_model.hh"
#include "tech/tech_node.hh"

namespace {

using namespace orion;

const tech::TechNode kTech = tech::TechNode::onChip100nm();

void
BM_BufferModelConstruct(benchmark::State& state)
{
    for (auto _ : state) {
        power::BufferModel m(kTech, {64, 256, 1, 1});
        benchmark::DoNotOptimize(m.readEnergy());
    }
}

void
BM_BufferReadEnergy(benchmark::State& state)
{
    const power::BufferModel m(kTech, {64, 256, 1, 1});
    for (auto _ : state)
        benchmark::DoNotOptimize(m.readEnergy());
}

void
BM_BufferWriteEnergy(benchmark::State& state)
{
    const power::BufferModel m(kTech, {64, 256, 1, 1});
    unsigned d = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.writeEnergy(d % 256, (d / 2) % 256));
        ++d;
    }
}

void
BM_CrossbarTraversalEnergy(benchmark::State& state)
{
    const power::CrossbarModel m(
        kTech, {5, 5, 256, power::CrossbarKind::Matrix, 0.0});
    unsigned d = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.traversalEnergy(d % 256));
        ++d;
    }
}

void
BM_ArbiterEnergy(benchmark::State& state)
{
    const power::ArbiterModel m(kTech,
                                {4, power::ArbiterKind::Matrix, 0.0});
    unsigned d = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.arbitrationEnergy(d % 4, d % 3));
        ++d;
    }
}

void
BM_CentralBufferWriteEnergy(benchmark::State& state)
{
    const power::CentralBufferModel m(
        kTech, {4, 2560, 32, 2, 2, 5, 2});
    unsigned d = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            m.writeEnergy(d % 32, d % 32, (d / 2) % 32));
        ++d;
    }
}

void
BM_LinkTraversalEnergy(benchmark::State& state)
{
    const power::OnChipLinkModel m(kTech, 3000.0, 256);
    unsigned d = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.traversalEnergy(d % 256));
        ++d;
    }
}

} // namespace

BENCHMARK(BM_BufferModelConstruct);
BENCHMARK(BM_BufferReadEnergy);
BENCHMARK(BM_BufferWriteEnergy);
BENCHMARK(BM_CrossbarTraversalEnergy);
BENCHMARK(BM_ArbiterEnergy);
BENCHMARK(BM_CentralBufferWriteEnergy);
BENCHMARK(BM_LinkTraversalEnergy);

BENCHMARK_MAIN();
