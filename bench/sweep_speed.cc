/**
 * @file
 * Parallel-sweep throughput benchmark: runs the same ≥8-point
 * injection-rate sweep serially (--jobs 1 path) and fanned across
 * hardware concurrency, verifies the results are bit-identical, and
 * emits machine-readable BENCH_sweep.json (wall time, points/sec,
 * speedup) alongside the human-readable table.
 *
 * Environment knobs (on top of bench_util's usual set):
 *  - ORION_SAMPLE: packets per point (default 2000 here — enough for
 *    a stable timing signal without a multi-minute serial baseline)
 *  - ORION_BENCH_JSON: output path (default "BENCH_sweep.json")
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/executor.hh"

namespace {

using namespace orion;
using namespace orion::bench;

using Clock = std::chrono::steady_clock;

struct Timing
{
    double wallSeconds = 0.0;
    double pointsPerSecond = 0.0;
};

Timing
timeSweep(const NetworkConfig& net, const TrafficConfig& traffic,
          const SimConfig& sim, const std::vector<double>& rates,
          unsigned seeds, unsigned jobs,
          std::vector<AveragedPoint>& out)
{
    const auto start = Clock::now();
    out = Sweep::overRatesAveraged(net, traffic, sim, rates, seeds,
                                   SweepOptions::withJobs(jobs));
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    Timing t;
    t.wallSeconds = elapsed.count();
    t.pointsPerSecond =
        static_cast<double>(rates.size() * seeds) / t.wallSeconds;
    return t;
}

bool
identical(const std::vector<AveragedPoint>& a,
          const std::vector<AveragedPoint>& b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].injectionRate != b[i].injectionRate ||
            a[i].seeds != b[i].seeds ||
            a[i].allCompleted != b[i].allCompleted ||
            a[i].meanLatency != b[i].meanLatency ||
            a[i].minLatency != b[i].minLatency ||
            a[i].maxLatency != b[i].maxLatency ||
            a[i].meanPowerWatts != b[i].meanPowerWatts ||
            a[i].meanThroughput != b[i].meanThroughput) {
            return false;
        }
    }
    return true;
}

} // namespace

int
main()
{
    SimConfig sim = defaultSimConfig();
    sim.samplePackets = envU64("ORION_SAMPLE", 2000);
    TrafficConfig traffic;
    traffic.pattern = net::TrafficPattern::UniformRandom;

    const NetworkConfig net = NetworkConfig::vc16();
    const std::vector<double> rates = Sweep::linspace(0.01, 0.10, 10);
    const unsigned seeds = 2;
    const unsigned hw = core::resolveJobs(0);
    const unsigned jobs =
        static_cast<unsigned>(envU64("ORION_JOBS", hw));
    // With one hardware thread the "parallel" run is serial execution
    // plus thread overhead, so its speedup says nothing about the
    // sweep engine. Report it, but mark the measurement degenerate.
    const bool degenerate = hw <= 1;
    if (degenerate) {
        std::fprintf(stderr,
                     "sweep_speed: WARNING: hardware_concurrency is "
                     "%u; the parallel timing is degenerate (threads "
                     "share one core) and the speedup figure is not "
                     "meaningful\n",
                     hw);
    }

    std::printf("Parallel sweep speed — VC16, %zu rates x %u seeds, "
                "%llu sample packets/point, %u hardware threads\n\n",
                rates.size(), seeds,
                static_cast<unsigned long long>(sim.samplePackets),
                hw);

    std::vector<AveragedPoint> serial_pts;
    std::vector<AveragedPoint> parallel_pts;
    const Timing serial =
        timeSweep(net, traffic, sim, rates, seeds, 1, serial_pts);
    const Timing parallel =
        timeSweep(net, traffic, sim, rates, seeds, jobs, parallel_pts);
    const bool same = identical(serial_pts, parallel_pts);
    const double speedup = serial.wallSeconds / parallel.wallSeconds;

    report::Table t;
    t.headers = {"mode", "jobs", "wall (s)", "points/s", "speedup"};
    t.addRow({"serial", "1", report::fmt(serial.wallSeconds, 2),
              report::fmt(serial.pointsPerSecond, 2), "1.00"});
    t.addRow({"parallel", std::to_string(jobs),
              report::fmt(parallel.wallSeconds, 2),
              report::fmt(parallel.pointsPerSecond, 2),
              report::fmt(speedup, 2)});
    std::printf("%s\n", report::formatTable(t).c_str());
    std::printf("results bit-identical: %s\n", same ? "yes" : "NO");
    if (degenerate)
        std::printf("NOTE: single hardware thread — speedup is not "
                    "meaningful\n");

    const char* json_path = std::getenv("ORION_BENCH_JSON");
    const std::string path =
        json_path != nullptr ? json_path : "BENCH_sweep.json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"benchmark\": \"parallel_sweep\",\n"
        "%s,\n"
        "  \"network\": \"vc16\",\n"
        "  \"rates\": %zu,\n"
        "  \"seeds_per_rate\": %u,\n"
        "  \"points\": %zu,\n"
        "  \"sample_packets_per_point\": %llu,\n"
        "  \"hardware_concurrency\": %u,\n"
        "  \"jobs\": %u,\n"
        "  \"serial\": { \"wall_s\": %.4f, \"points_per_s\": %.3f },\n"
        "  \"parallel\": { \"wall_s\": %.4f, \"points_per_s\": %.3f },\n"
        "  \"speedup\": %.3f,\n"
        "  \"speedup_meaningful\": %s,\n"
        "%s"
        "  \"bit_identical\": %s\n"
        "}\n",
        buildJsonObject().c_str(),
        rates.size(), seeds, rates.size() * seeds,
        static_cast<unsigned long long>(sim.samplePackets), hw, jobs,
        serial.wallSeconds, serial.pointsPerSecond,
        parallel.wallSeconds, parallel.pointsPerSecond, speedup,
        degenerate ? "false" : "true",
        degenerate ? "  \"warning\": \"hardware_concurrency is 1; "
                     "parallel timing is degenerate\",\n"
                   : "",
        same ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());

    return same ? 0 : 1;
}
