/**
 * @file
 * Figure 6 reproduction: power spatial distribution of a 4x4 on-chip
 * torus under diverse traffic (paper Section 4.3).
 *
 *  - 6(a): uniform random traffic, total network injection rate 0.2
 *    packets/cycle (0.2/16 per node) — expect a flat per-node power
 *    map.
 *  - 6(b): broadcast traffic from node (1,2) at 0.2 packets/cycle —
 *    expect power peaked at the source, decaying with Manhattan
 *    distance; with y-first routing, (1,1) and (1,3) above (0,2) and
 *    (2,2); columns with equal x (x != 1) uniform.
 *
 * Router: VC, 2 VCs x 8 flits (the paper's Section 4.3 config).
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"

namespace {

using namespace orion;

void
printMap(const char* title, const Report& r)
{
    report::Table t;
    t.title = title;
    t.headers = {"y\\x", "0", "1", "2", "3"};
    for (int y = 3; y >= 0; --y) {
        std::vector<std::string> row{std::to_string(y)};
        for (int x = 0; x < 4; ++x) {
            row.push_back(
                report::fmt(r.nodePowerWatts[static_cast<unsigned>(
                                y * 4 + x)],
                            3));
        }
        t.addRow(std::move(row));
    }
    std::printf("%s\n", report::formatTable(t).c_str());
}

} // namespace

int
main()
{
    using namespace orion::bench;

    const SimConfig sim = defaultSimConfig();
    NetworkConfig net = NetworkConfig::vc16(); // 2 VCs x 8 flits

    std::printf("Figure 6 — power spatial distribution, 4x4 on-chip "
                "torus, VC router (2 VCs x 8 flits)\n");
    std::printf("total injection 0.2 packets/cycle across the "
                "network in both workloads\n\n");

    // 6(a): uniform random at 0.2/16 per node.
    TrafficConfig uniform;
    uniform.pattern = net::TrafficPattern::UniformRandom;
    uniform.injectionRate = 0.2 / 16.0;
    Simulation sa(net, uniform, sim);
    const Report ra = sa.run();
    printMap("Fig 6(a) — per-node power (W), uniform random", ra);

    double pmin = 1e30;
    double pmax = 0.0;
    for (const double p : ra.nodePowerWatts) {
        pmin = std::min(pmin, p);
        pmax = std::max(pmax, p);
    }
    std::printf("uniform spread: min %.3f W, max %.3f W "
                "(max/min = %.2f — flat distribution)\n\n",
                pmin, pmax, pmax / pmin);

    // 6(b): broadcast from (1,2) at 0.2 packets/cycle.
    TrafficConfig bcast;
    bcast.pattern = net::TrafficPattern::Broadcast;
    bcast.injectionRate = 0.2;
    bcast.broadcastSource = 1 + 2 * 4; // node (1,2)
    Simulation sb(net, bcast, sim);
    const Report rb = sb.run();
    printMap("Fig 6(b) — per-node power (W), broadcast from (1,2)", rb);

    const auto at = [&](int x, int y) {
        return rb.nodePowerWatts[static_cast<unsigned>(y * 4 + x)];
    };
    std::printf("source (1,2): %.3f W (network max: %s)\n", at(1, 2),
                at(1, 2) >= pmax ? "yes" : "see map");
    std::printf("y-first routing: (1,1) = %.3f W, (1,3) = %.3f W vs "
                "(0,2) = %.3f W, (2,2) = %.3f W\n",
                at(1, 1), at(1, 3), at(0, 2), at(2, 2));

    // Power vs Manhattan distance from the source.
    report::Table d;
    d.title = "mean node power by Manhattan distance from (1,2)";
    d.headers = {"distance", "nodes", "mean power (W)"};
    const net::Topology topo({4, 4}, true);
    const int src = 1 + 2 * 4;
    for (unsigned dist = 0; dist <= 4; ++dist) {
        double sum = 0.0;
        int count = 0;
        for (int n = 0; n < 16; ++n) {
            if (topo.manhattanDistance(src, n) == dist) {
                sum += rb.nodePowerWatts[static_cast<unsigned>(n)];
                ++count;
            }
        }
        if (count == 0)
            continue;
        d.addRow({std::to_string(dist), std::to_string(count),
                  report::fmt(sum / count, 3)});
    }
    std::printf("\n%s", report::formatTable(d).c_str());
    return 0;
}
