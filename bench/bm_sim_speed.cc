/**
 * @file
 * Simulator speed microbenchmarks (google-benchmark).
 *
 * The paper (Section 4.1) quotes "a system simulation speed of about
 * 1000 simulation cycles per second on a Pentium III 750MHz" for the
 * 59-module 4x4 torus VC network. These benchmarks measure our
 * cycles/second on the same network shapes.
 */

#include <benchmark/benchmark.h>

#include "core/config.hh"
#include "core/simulation.hh"
#include "core/sweep.hh"

namespace {

using namespace orion;

void
runCycles(benchmark::State& state, const NetworkConfig& cfg,
          double rate)
{
    TrafficConfig traffic;
    traffic.injectionRate = rate;
    SimConfig sim;
    Simulation s(cfg, traffic, sim);
    // Warm the network so the measured cycles carry real traffic.
    s.step(1000);

    const auto chunk = static_cast<sim::Cycle>(state.range(0));
    for (auto _ : state)
        s.step(chunk);
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(chunk * state.iterations()),
        benchmark::Counter::kIsRate);
}

void
BM_Vc16Network(benchmark::State& state)
{
    runCycles(state, NetworkConfig::vc16(), 0.08);
}

void
BM_Vc64Network(benchmark::State& state)
{
    runCycles(state, NetworkConfig::vc64(), 0.08);
}

void
BM_Wormhole64Network(benchmark::State& state)
{
    runCycles(state, NetworkConfig::wh64(), 0.08);
}

void
BM_CentralBufferNetwork(benchmark::State& state)
{
    runCycles(state, NetworkConfig::cb(), 0.08);
}

void
BM_XbNetwork(benchmark::State& state)
{
    runCycles(state, NetworkConfig::xb(), 0.08);
}

/**
 * Sweep throughput: an 8-point VC16 injection-rate sweep, the unit of
 * work behind every figure harness. Arg = SweepOptions::jobs (1 =
 * serial baseline, 0 = hardware concurrency); results are
 * bit-identical across args, only wall clock changes.
 */
void
BM_SweepOverRates(benchmark::State& state)
{
    TrafficConfig traffic;
    SimConfig sim;
    sim.samplePackets = 500;
    sim.maxCycles = 60000;
    const auto rates = Sweep::linspace(0.01, 0.08, 8);
    SweepOptions opts;
    opts.jobs = static_cast<unsigned>(state.range(0));

    for (auto _ : state) {
        auto points = Sweep::overRates(NetworkConfig::vc16(), traffic,
                                       sim, rates, opts);
        benchmark::DoNotOptimize(points);
    }
    state.counters["points/s"] = benchmark::Counter(
        static_cast<double>(rates.size() * state.iterations()),
        benchmark::Counter::kIsRate);
}

} // namespace

BENCHMARK(BM_Vc16Network)->Arg(256);
BENCHMARK(BM_Vc64Network)->Arg(256);
BENCHMARK(BM_Wormhole64Network)->Arg(256);
BENCHMARK(BM_CentralBufferNetwork)->Arg(256);
BENCHMARK(BM_XbNetwork)->Arg(256);
BENCHMARK(BM_SweepOverRates)
    ->Arg(1)  // serial baseline
    ->Arg(0)  // hardware concurrency
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK_MAIN();
