/**
 * @file
 * Supplementary scaling study (beyond the paper's 4x4 evaluation):
 * how latency, power, and the component breakdown evolve as the torus
 * grows from 4x4 to 8x8 and as the topology switches to a mesh —
 * exercising the "pick, plug and play" generality the paper claims
 * for its component library (Section 6).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/executor.hh"

int
main()
{
    using namespace orion;
    using namespace orion::bench;

    SimConfig sim = defaultSimConfig();
    sim.samplePackets =
        std::min<std::uint64_t>(sim.samplePackets, 4000);

    struct Shape
    {
        const char* name;
        std::vector<unsigned> dims;
        bool wrap;
    };
    const std::vector<Shape> shapes = {
        {"4x4 torus", {4, 4}, true},
        {"8x8 torus", {8, 8}, true},
        {"4x4 mesh", {4, 4}, false},
        {"8x8 mesh", {8, 8}, false},
        {"4x4x4 torus", {4, 4, 4}, true},
    };

    std::printf("Scaling study — VC routers (2 VCs x 8 flits, 256-bit "
                "flits, 2 GHz), uniform random at 0.05\n\n");

    // Shapes are independent runs; fan them across ORION_JOBS workers
    // and emit the rows in shape order afterwards.
    std::vector<std::vector<std::string>> rows(shapes.size());
    core::parallelFor(
        defaultSweepOptions().jobs, shapes.size(), [&](std::size_t i) {
            const auto& shape = shapes[i];
            NetworkConfig cfg = NetworkConfig::vc16();
            cfg.net.dims = shape.dims;
            cfg.net.wrap = shape.wrap;
            if (!shape.wrap)
                cfg.net.deadlock =
                    router::DeadlockMode::None; // DOR mesh
            TrafficConfig traffic;
            traffic.injectionRate = 0.05;

            Simulation s(cfg, traffic, sim);
            const Report r = s.run();
            const auto n = s.network().topology().numNodes();
            rows[i] = {
                shape.name,
                std::to_string(n),
                r.completed ? report::fmt(r.avgLatencyCycles, 1)
                            : ">cap",
                report::fmt(r.networkPowerWatts, 2),
                report::fmt(r.networkPowerWatts / n, 3),
                report::fmt(r.breakdownWatts.buffer, 2),
                report::fmt(r.breakdownWatts.crossbar, 2),
                report::fmt(r.breakdownWatts.link, 2),
            };
        });

    report::Table t;
    t.headers = {"network",    "nodes",   "avg latency",
                 "power (W)",  "W/node",  "buffer W", "xbar W",
                 "link W"};
    for (auto& row : rows)
        t.addRow(std::move(row));
    std::printf("%s", report::formatTable(t).c_str());
    std::printf("\nLarger networks raise per-node power (longer "
                "average paths => more flit-hops per delivered\n"
                "packet). Meshes pay for their missing wraparound "
                "links twice: longer average routes raise both\n"
                "latency and per-packet link/crossbar energy. Adding "
                "a third dimension shortens paths (lower\n"
                "latency than the same-size 2-D torus) at the cost "
                "of 7-port routers.\n");
    return 0;
}
