/**
 * @file
 * Section 3.3 walkthrough reproduction: the per-flit energy of the
 * simple wormhole router (5 ports, 4-flit buffers, 32-bit flits, 5x5
 * crossbar, 4:1 arbiter per output):
 *
 *   E_flit = E_wrt + E_arb + E_read + E_xb + E_link
 *
 * printed term by term, at average switching activity and as measured
 * for an actual random-payload flit driven through the router model.
 */

#include <cstdio>

#include "core/report.hh"
#include "power/arbiter_model.hh"
#include "power/buffer_model.hh"
#include "power/crossbar_model.hh"
#include "power/link_model.hh"
#include "tech/tech_node.hh"

int
main()
{
    using namespace orion;
    using orion::report::fmtEng;

    const tech::TechNode tech = tech::TechNode::onChip100nm();

    // The walkthrough router's components (Section 3.3).
    const power::BufferModel buf(tech, {4, 32, 1, 1});
    const power::CrossbarModel xbar(
        tech, {5, 5, 32, power::CrossbarKind::Matrix, 0.0});
    const power::ArbiterModel arb(
        tech, {4, power::ArbiterKind::Matrix, xbar.controlCap()});
    const power::OnChipLinkModel link(tech, 3000.0, 32);

    const double e_wrt = buf.avgWriteEnergy();
    const double e_arb = arb.avgArbitrationEnergy();
    const double e_read = buf.readEnergy();
    const double e_xb = xbar.avgTraversalEnergy();
    const double e_link = link.avgTraversalEnergy();
    const double e_flit = e_wrt + e_arb + e_read + e_xb + e_link;

    std::printf("Section 3.3 walkthrough — head flit through a simple "
                "wormhole router\n");
    std::printf("(5 ports, 4-flit buffers, 32-bit flits, 5x5 crossbar, "
                "4:1 arbiters, 3 mm link)\n\n");

    report::Table t;
    t.headers = {"term", "event", "energy", "share"};
    const auto row = [&](const char* term, const char* event,
                         double e) {
        t.addRow({term, event, fmtEng(e, "J", 2),
                  report::fmt(100.0 * e / e_flit, 1) + " %"});
    };
    row("E_wrt", "buffer write", e_wrt);
    row("E_arb", "arbitration (incl. E_xb_ctr)", e_arb);
    row("E_read", "buffer read", e_read);
    row("E_xb", "crossbar traversal", e_xb);
    row("E_link", "link traversal", e_link);
    t.addRow({"E_flit", "total per flit per hop",
              fmtEng(e_flit, "J", 2), "100.0 %"});
    std::printf("%s", report::formatTable(t).c_str());
    return 0;
}
