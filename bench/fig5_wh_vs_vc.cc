/**
 * @file
 * Figure 5 reproduction: power-performance of on-chip 4x4 torus
 * networks under wormhole vs. virtual-channel flow control at varying
 * packet injection rates (paper Section 4.2).
 *
 *  - 5(a): average packet latency vs. injection rate for WH64, VC16,
 *    VC64, VC128
 *  - 5(b): total network power vs. injection rate
 *  - 5(c): VC64 average power breakdown (buffer / crossbar / arbiter /
 *    link)
 *
 * Expected shapes (checked in EXPERIMENTS.md): VC16 saturates above
 * WH64 (~0.15 vs lower); VC16 burns less power than WH64 until it
 * absorbs more traffic past WH64's saturation; VC64 ~ WH64 in power;
 * VC128 burns more power than VC64 with no throughput gain; power
 * flattens past saturation; arbiter share is negligible.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"

int
main()
{
    using namespace orion;
    using namespace orion::bench;

    const SimConfig sim = defaultSimConfig();
    TrafficConfig traffic;
    traffic.pattern = net::TrafficPattern::UniformRandom;

    struct Config
    {
        const char* name;
        NetworkConfig net;
    };
    const std::vector<Config> configs = {
        {"WH64", NetworkConfig::wh64()},
        {"VC16", NetworkConfig::vc16()},
        {"VC64", NetworkConfig::vc64()},
        {"VC128", NetworkConfig::vc128()},
    };

    const std::vector<double> rates = {0.01, 0.03, 0.05, 0.07, 0.09,
                                       0.11, 0.13, 0.15, 0.17, 0.20};

    std::printf("Figure 5 — on-chip 4x4 torus, 256-bit flits, 2 GHz, "
                "0.1 um, uniform random traffic\n");
    std::printf("(sample = %llu packets per point; latency '>cap' "
                "marks saturated runs)\n\n",
                static_cast<unsigned long long>(sim.samplePackets));

    // Run all configs over all rates, fanning each config's points
    // across ORION_JOBS workers (results are jobs-independent).
    const SweepOptions sweep_opts = defaultSweepOptions();
    std::vector<std::vector<SweepPoint>> results;
    std::vector<double> zero_load;
    for (const auto& c : configs) {
        results.push_back(
            Sweep::overRates(c.net, traffic, sim, rates, sweep_opts));
        zero_load.push_back(Sweep::zeroLoadLatency(c.net, traffic, sim));
    }

    // Figure 5(a): latency curves.
    report::Table fa;
    fa.title = "Fig 5(a) — avg packet latency (cycles) vs injection "
               "rate (pkts/cycle/node)";
    fa.headers = {"rate"};
    for (const auto& c : configs)
        fa.headers.push_back(c.name);
    for (std::size_t i = 0; i < rates.size(); ++i) {
        std::vector<std::string> row{rateLabel(rates[i])};
        for (std::size_t c = 0; c < configs.size(); ++c)
            row.push_back(latencyCell(results[c][i].report));
        fa.addRow(std::move(row));
    }
    std::printf("%s\n", report::formatTable(fa).c_str());

    // Saturation points per the paper's 2x zero-load definition.
    report::Table sat;
    sat.title = "saturation (latency > 2x zero-load)";
    sat.headers = {"config", "zero-load latency", "saturation rate"};
    for (std::size_t c = 0; c < configs.size(); ++c) {
        const double s = Sweep::saturationRate(results[c], zero_load[c]);
        sat.addRow({configs[c].name, report::fmt(zero_load[c], 1),
                    s < 0 ? "> 0.20" : report::fmt(s, 3)});
    }
    std::printf("%s\n", report::formatTable(sat).c_str());

    // Figure 5(b): total network power curves.
    report::Table fb;
    fb.title = "Fig 5(b) — total network power (W) vs injection rate";
    fb.headers = {"rate"};
    for (const auto& c : configs)
        fb.headers.push_back(c.name);
    for (std::size_t i = 0; i < rates.size(); ++i) {
        std::vector<std::string> row{rateLabel(rates[i])};
        for (std::size_t c = 0; c < configs.size(); ++c)
            row.push_back(powerCell(results[c][i].report));
        fb.addRow(std::move(row));
    }
    std::printf("%s\n", report::formatTable(fb).c_str());

    // Accepted throughput (supplementary; makes the saturation
    // points visible as a flattening series).
    report::Table thr;
    thr.title = "accepted throughput (flits/node/cycle) vs injection "
                "rate";
    thr.headers = {"rate"};
    for (const auto& c : configs)
        thr.headers.push_back(c.name);
    for (std::size_t i = 0; i < rates.size(); ++i) {
        std::vector<std::string> row{rateLabel(rates[i])};
        for (std::size_t c = 0; c < configs.size(); ++c) {
            row.push_back(report::fmt(
                results[c][i].report.acceptedFlitsPerNodePerCycle,
                3));
        }
        thr.addRow(std::move(row));
    }
    std::printf("%s\n", report::formatTable(thr).c_str());

    // Figure 5(c): VC64 power breakdown vs rate.
    report::Table fc;
    fc.title = "Fig 5(c) — VC64 average power breakdown (W)";
    fc.headers = {"rate",    "buffer", "crossbar",
                  "arbiter", "link",   "arbiter %"};
    const auto& vc64 = results[2];
    for (std::size_t i = 0; i < rates.size(); ++i) {
        const auto& r = vc64[i].report;
        fc.addRow({
            rateLabel(rates[i]),
            report::fmt(r.breakdownWatts.buffer, 2),
            report::fmt(r.breakdownWatts.crossbar, 2),
            report::fmt(r.breakdownWatts.arbiter, 4),
            report::fmt(r.breakdownWatts.link, 2),
            report::fmt(100.0 * r.breakdownWatts.arbiter /
                            r.networkPowerWatts,
                        2) + " %",
        });
    }
    std::printf("%s", report::formatTable(fc).c_str());
    return 0;
}
