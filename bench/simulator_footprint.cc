/**
 * @file
 * Section 4.1 footprint parity: the paper reports that "a typical 4x4
 * torus network using virtual channels comprises 59 modules. The
 * constructed Orion simulator is 5202KB in size, with a system
 * simulation speed of about 1000 simulation cycles per second on a
 * Pentium III 750MHz machine running Linux."
 *
 * This harness prints our equivalents for the same network: module
 * and channel counts, an in-memory footprint estimate, and measured
 * cycles/second (single run, wall clock) for each router family.
 */

#include <chrono>
#include <cstdio>
#include <string>

#include "core/config.hh"
#include "core/report.hh"
#include "core/simulation.hh"

namespace {

using namespace orion;

double
measureCyclesPerSecond(Simulation& s, sim::Cycle cycles)
{
    s.step(1000); // warm the network
    const auto start = std::chrono::steady_clock::now();
    s.step(cycles);
    const auto stop = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(stop - start).count();
    return static_cast<double>(cycles) / secs;
}

} // namespace

int
main()
{
    std::printf("Simulator footprint vs the paper's Section 4.1 "
                "figures\n");
    std::printf("(paper: 59 modules, 5202 KB simulator, ~1000 "
                "cycles/s on a P-III 750)\n\n");

    report::Table t;
    t.headers = {"network",        "modules", "links+channels",
                 "cycles/s",       "speed vs paper"};

    struct Row
    {
        const char* name;
        NetworkConfig cfg;
    };
    const Row rows[] = {
        {"4x4 torus VC16 (the paper's network)", NetworkConfig::vc16()},
        {"4x4 torus VC64", NetworkConfig::vc64()},
        {"4x4 torus WH64", NetworkConfig::wh64()},
        {"4x4 torus CB", NetworkConfig::cb()},
        {"4x4 torus XB", NetworkConfig::xb()},
    };

    for (const auto& row : rows) {
        TrafficConfig traffic;
        traffic.injectionRate = 0.08;
        SimConfig sim;
        Simulation s(row.cfg, traffic, sim);

        // Channels: per inter-router link one data + one credit;
        // per node 3 local channels.
        const unsigned links = s.network().interRouterLinks();
        const unsigned nodes = s.network().topology().numNodes();
        const unsigned channels = 2 * links + 3 * nodes;

        const double cps = measureCyclesPerSecond(s, 20000);
        t.addRow({
            row.name,
            std::to_string(s.simulator().moduleCount()),
            std::to_string(channels),
            report::fmt(cps / 1000.0, 0) + " k",
            report::fmt(cps / 1000.0, 0) + "x",
        });
    }
    std::printf("%s", report::formatTable(t).c_str());
    std::printf("\nModule counts differ from the paper's 59 because "
                "LSE counted fine-grained sub-modules\n(buffers, "
                "arbiters, crossbars as separate module instances); "
                "here those are sub-objects of 16\nrouter + 16 "
                "endpoint modules wired by %u registered channels.\n",
                2u * 64u + 3u * 16u);
    return 0;
}
