/**
 * @file
 * Figure 7 reproduction: central-buffered (CB) vs input-buffered
 * crossbar (XB) routers on a chip-to-chip 4x4 torus (paper Section
 * 4.4). 32-bit flits, 1 GHz routers, 3 W per chip-to-chip link.
 *
 *  - 7(a,d): average packet latency vs injection rate, uniform random
 *    and broadcast
 *  - 7(b,e): total network power vs injection rate
 *  - 7(c):   XB power breakdown (links dominate, > 70%)
 *  - 7(f):   CB power breakdown (central buffer dominates the router)
 *
 * Expected shapes: XB outperforms CB under uniform random (CB has
 * fewer switch-fabric ports); CB outperforms XB under broadcast (no
 * head-of-line blocking); CB burns more power (central buffer swings
 * more capacitance); chip-to-chip link power is constant with load.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "power/buffer_model.hh"
#include "power/central_buffer_model.hh"

namespace {

using namespace orion;
using namespace orion::bench;

void
latencyAndPower(const char* tag,
                const std::vector<double>& rates,
                const std::vector<SweepPoint>& cb,
                const std::vector<SweepPoint>& xb)
{
    report::Table t;
    t.title = std::string("Fig 7 — ") + tag;
    t.headers = {"rate",     "CB latency", "XB latency",
                 "CB power", "XB power"};
    for (std::size_t i = 0; i < rates.size(); ++i) {
        t.addRow({
            rateLabel(rates[i]),
            latencyCell(cb[i].report),
            latencyCell(xb[i].report),
            powerCell(cb[i].report) + " W",
            powerCell(xb[i].report) + " W",
        });
    }
    std::printf("%s\n", report::formatTable(t).c_str());
}

void
breakdown(const char* title, const Report& r)
{
    report::Table t;
    t.title = title;
    t.headers = {"component", "power (W)", "share"};
    const auto row = [&](const char* name, double w) {
        t.addRow({name, report::fmt(w, 3),
                  report::fmt(100.0 * w / r.networkPowerWatts, 1) +
                      " %"});
    };
    row("input buffers", r.breakdownWatts.buffer);
    row("crossbar", r.breakdownWatts.crossbar);
    row("arbiters", r.breakdownWatts.arbiter);
    row("central buffer", r.breakdownWatts.centralBuffer);
    row("links (constant)", r.breakdownWatts.link);
    std::printf("%s\n", report::formatTable(t).c_str());
}

} // namespace

int
main()
{
    const SimConfig sim = defaultSimConfig();

    const NetworkConfig cb = NetworkConfig::cb();
    const NetworkConfig xb = NetworkConfig::xb();

    std::printf("Figure 7 — chip-to-chip 4x4 torus, CB vs XB routers\n");
    std::printf("CB: 4-bank 2560-row central buffer (2R/2W) + 64-flit "
                "input FIFOs\n");
    std::printf("XB: 16 VCs x 268-flit input buffers + 5x5 crossbar\n");
    std::printf("32-bit flits, 1 GHz, 3 W per link "
                "(traffic-insensitive)\n\n");

    // The paper's fairness premise: "two router configurations ...
    // that take up roughly the same area", estimated from bitline/
    // wordline and crossbar line lengths.
    {
        const tech::TechNode tech = cb.tech;
        const power::BufferModel xb_vc(tech, {268, 32, 1, 1});
        const power::CentralBufferModel cb_pool(
            tech, {4, 2560, 32, 2, 2, 5, 2});
        const power::BufferModel cb_fifo(tech, {64, 32, 1, 1});
        const double xb_area = 5.0 * 16.0 * xb_vc.areaUm2() / 1e6;
        const double cb_area =
            (cb_pool.areaUm2() + 5.0 * cb_fifo.areaUm2()) / 1e6;
        std::printf("area check (paper: 'roughly the same area'): "
                    "XB buffers %.2f mm2, CB pool+FIFOs %.2f mm2 "
                    "(ratio %.2f)\n\n",
                    xb_area, cb_area, xb_area / cb_area);
    }

    const std::vector<double> rates = {0.02, 0.05, 0.08, 0.11, 0.14,
                                       0.17, 0.20};

    // Uniform random (7a, 7b).
    const SweepOptions sweep_opts = defaultSweepOptions();
    TrafficConfig uniform;
    uniform.pattern = net::TrafficPattern::UniformRandom;
    const auto cb_u =
        Sweep::overRates(cb, uniform, sim, rates, sweep_opts);
    const auto xb_u =
        Sweep::overRates(xb, uniform, sim, rates, sweep_opts);
    latencyAndPower("(a,b) uniform random traffic", rates, cb_u, xb_u);

    // Broadcast from (1,2) (7d, 7e). Rates are the source node's;
    // sweep to the paper's 0.2 maximum. A single injector accumulates
    // the sample slowly, so the cycle cap scales with 1/rate.
    TrafficConfig bcast;
    bcast.pattern = net::TrafficPattern::Broadcast;
    bcast.broadcastSource = 1 + 2 * 4;
    SimConfig bcast_sim = sim;
    bcast_sim.maxCycles = std::max<sim::Cycle>(
        sim.maxCycles,
        static_cast<sim::Cycle>(
            3.0 * static_cast<double>(sim.samplePackets) /
            rates.front()));
    const auto cb_b =
        Sweep::overRates(cb, bcast, bcast_sim, rates, sweep_opts);
    const auto xb_b =
        Sweep::overRates(xb, bcast, bcast_sim, rates, sweep_opts);
    latencyAndPower("(d,e) broadcast traffic from (1,2)", rates, cb_b,
                    xb_b);

    // Supplementary non-uniform workload: broadcast from one source
    // saturates at the injection-link limit before either router's
    // microarchitecture can matter (see EXPERIMENTS.md), so the
    // head-of-line contrast the paper attributes to CB routers is
    // exercised with hotspot traffic, where blocked hot-node packets
    // trap others behind them in XB input queues while the CB's
    // per-output queues keep other flows moving.
    TrafficConfig hot;
    hot.pattern = net::TrafficPattern::Hotspot;
    hot.hotspotNode = 1 + 2 * 4;
    hot.hotspotFraction = 0.4;
    const std::vector<double> hot_rates = {0.02, 0.04, 0.06, 0.08,
                                           0.10};
    const auto cb_h =
        Sweep::overRates(cb, hot, sim, hot_rates, sweep_opts);
    const auto xb_h =
        Sweep::overRates(xb, hot, sim, hot_rates, sweep_opts);
    {
        report::Table t;
        t.title = "Fig 7(d') supplement — hotspot traffic (40% to "
                  "node (1,2)); latency of delivered packets";
        t.headers = {"rate", "CB latency", "XB latency"};
        for (std::size_t i = 0; i < hot_rates.size(); ++i) {
            t.addRow({rateLabel(hot_rates[i]),
                      report::fmt(cb_h[i].report.avgLatencyCycles, 0),
                      report::fmt(xb_h[i].report.avgLatencyCycles, 0)});
        }
        std::printf("%s\n", report::formatTable(t).c_str());
    }

    // Breakdowns at a mid load (7c, 7f).
    breakdown("Fig 7(c) — XB power breakdown (uniform, rate 0.08)",
              xb_u[2].report);
    breakdown("Fig 7(f) — CB power breakdown (uniform, rate 0.08)",
              cb_u[2].report);

    const auto& xbr = xb_u[2].report;
    std::printf("XB link share: %.1f %% of network power "
                "(paper: > 70%% for chip-to-chip)\n",
                100.0 * xbr.breakdownWatts.link /
                    xbr.networkPowerWatts);
    return 0;
}
