/**
 * @file
 * Shared helpers for the figure-reproduction harnesses: environment
 * knobs for run size, and table emission of sweep results.
 *
 * Environment variables:
 *  - ORION_SAMPLE: packets in the measurement sample (default 10000,
 *    the paper's value; set lower for quick smoke runs)
 *  - ORION_MAX_CYCLES: post-warm-up cycle cap per point
 *  - ORION_SEED: RNG seed
 *  - ORION_JOBS: sweep worker threads (default: hardware concurrency;
 *    results are identical for any value — see SweepOptions::jobs)
 */

#ifndef ORION_BENCH_BENCH_UTIL_HH
#define ORION_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdlib>
#include <string>

#include "core/build_info.hh"
#include "core/config.hh"
#include "core/log.hh"
#include "core/report.hh"
#include "core/simulation.hh"
#include "core/sweep.hh"

namespace orion::bench {

inline std::uint64_t
envU64(const char* name, std::uint64_t fallback)
{
    const char* v = std::getenv(name);
    return v ? std::strtoull(v, nullptr, 10) : fallback;
}

inline SimConfig
defaultSimConfig()
{
    SimConfig s;
    s.warmupCycles = 1000;
    s.samplePackets = envU64("ORION_SAMPLE", 10000);
    s.maxCycles = envU64("ORION_MAX_CYCLES", 400000);
    s.seed = envU64("ORION_SEED", 1);
    return s;
}

/** Sweep execution knobs: ORION_JOBS worker threads, defaulting to
 * hardware concurrency (jobs = 0). */
inline SweepOptions
defaultSweepOptions()
{
    SweepOptions opts;
    opts.jobs = static_cast<unsigned>(envU64("ORION_JOBS", 0));
    return opts;
}

/** "0.150" style rate label. */
inline std::string
rateLabel(double rate)
{
    return report::fmt(rate, 3);
}

/** Latency cell: "-" once the run failed to complete (saturated). */
inline std::string
latencyCell(const Report& r)
{
    if (!r.completed)
        return r.deadlockSuspected ? "stall" : ">cap";
    return report::fmt(r.avgLatencyCycles, 1);
}

inline std::string
powerCell(const Report& r)
{
    return report::fmt(r.networkPowerWatts, 2);
}

/**
 * The "build" provenance object for bench JSON outputs, as one
 * indented member line (no trailing comma). Informational only: the
 * regression gates in tools/check.sh read specific config keys and
 * never look at this object, so provenance can evolve without
 * re-baselining.
 */
inline std::string
buildJsonObject(const char* indent = "  ")
{
    namespace log = core::log;
    const core::BuildInfo& b = core::buildInfo();
    std::string j;
    j += indent;
    j += "\"build\": {\"compiler\": \"";
    j += log::jsonEscape(b.compiler);
    j += "\", \"flags\": \"";
    j += log::jsonEscape(b.flags);
    j += "\", \"git_sha\": \"";
    j += log::jsonEscape(b.gitSha);
    j += "\", \"build_type\": \"";
    j += log::jsonEscape(b.buildType);
    j += "\", \"host\": \"";
    j += log::jsonEscape(core::hostName());
    j += "\"}";
    return j;
}

} // namespace orion::bench

#endif // ORION_BENCH_BENCH_UTIL_HH
