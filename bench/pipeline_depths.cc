/**
 * @file
 * Router pipeline depths per the analytic delay model (the paper
 * adopts the Peh-Dally router delay model for its pipelines:
 * "virtual-channel routers fit within a 3-stage router pipeline ...
 * and the wormhole router has a 2-stage router pipeline").
 *
 * Prints per-stage FO4 delays and resulting pipeline depths across
 * router shapes and clock targets, plus the speculative VC pipeline's
 * depth (VA and SA share a stage).
 */

#include <cstdio>
#include <string>

#include "core/report.hh"
#include "router/delay_model.hh"
#include "tech/tech_node.hh"

int
main()
{
    using namespace orion;
    using orion::report::fmt;
    using orion::router::DelayModel;

    const tech::TechNode tech = tech::TechNode::onChip100nm();
    std::printf("Router pipeline depths (Peh-Dally-style delay "
                "model); FO4 at 0.1 um = %.1f ps\n\n",
                DelayModel::fo4Ps(tech));

    report::Table t;
    t.headers = {"router",       "ports", "vcs", "t_VA (FO4)",
                 "t_SA (FO4)",   "t_ST (FO4)", "depth @20FO4",
                 "depth @16FO4", "spec depth @20FO4"};

    struct Shape
    {
        const char* name;
        bool hasVa;
        unsigned ports;
        unsigned vcs;
        unsigned width;
    };
    const Shape shapes[] = {
        {"WH64 wormhole", false, 5, 1, 256},
        {"VC16", true, 5, 2, 256},
        {"VC64 / VC128", true, 5, 8, 256},
        {"XB (fig 7)", true, 5, 16, 32},
        {"7-port 3-D VC", true, 7, 4, 128},
    };

    const DelayModel fast(16.0);
    const DelayModel nominal(20.0);
    for (const auto& s : shapes) {
        const double t_va =
            s.hasVa ? nominal.vcAllocDelayFo4(s.ports, s.vcs) : 0.0;
        const double t_sa = nominal.switchAllocDelayFo4(s.ports);
        const double t_st = nominal.crossbarDelayFo4(s.ports, s.width);

        // Speculative: VA and SA share one stage; its delay is the
        // slower of the two (they resolve in parallel).
        unsigned spec_depth = 0;
        if (s.hasVa) {
            spec_depth = nominal.stagesFor(std::max(t_va, t_sa)) +
                         nominal.stagesFor(t_st);
        }

        t.addRow({
            s.name,
            std::to_string(s.ports),
            std::to_string(s.vcs),
            s.hasVa ? fmt(t_va, 1) : "-",
            fmt(t_sa, 1),
            fmt(t_st, 1),
            std::to_string(
                nominal.pipelineDepth(s.hasVa, s.ports, s.vcs, s.width)),
            std::to_string(
                fast.pipelineDepth(s.hasVa, s.ports, s.vcs, s.width)),
            s.hasVa ? std::to_string(spec_depth) : "-",
        });
    }
    std::printf("%s", report::formatTable(t).c_str());
    std::printf("\nThe paper's configurations: 3-stage VC pipelines "
                "and a 2-stage wormhole pipeline at a 20 FO4\nclock; "
                "speculation merges VA into SA's stage, matching the "
                "wormhole depth for VC routers.\n");
    return 0;
}
