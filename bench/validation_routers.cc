/**
 * @file
 * Section 3.2 "Validation" reproduction — as far as it can be
 * reproduced: the paper compared Orion's estimates for two commercial
 * routers (the Alpha 21364 router and the IBM InfiniBand 8-port 12X
 * switch) against designers' guesstimates and reported them "within
 * ballpark", without publishing error margins (the underlying data
 * was proprietary).
 *
 * This harness builds both routers from our component models with
 * publicly known parameters and prints the resulting power estimates
 * next to the published reference points:
 *   - Alpha 21364: integrated router + links = 25 W of a 125 W chip
 *     (paper Section 1; 0.18 um, 1.2 GHz, ~20 GB/s of links)
 *   - InfiniBand switch: 15 W of a 40 W Mellanox blade budget; a 12X
 *     link is 3 W at 30 Gb/s (paper Sections 1 and 4.4)
 *
 * Our first-principles capacitances sit below the Cacti-0.8um-derived
 * values the original used, so the dynamic-core estimates land under
 * the published figures; link-dominated totals land close. The table
 * makes the comparison explicit instead of claiming a match.
 */

#include <cstdio>
#include <string>

#include "core/report.hh"
#include "power/arbiter_model.hh"
#include "power/buffer_model.hh"
#include "power/central_buffer_model.hh"
#include "power/crossbar_model.hh"
#include "tech/tech_node.hh"

namespace {

using namespace orion;
using orion::report::fmt;
using orion::report::fmtEng;

/** Power of one router port stream at the given flit rate. */
double
streamPower(double energy_per_flit, double flits_per_cycle,
            double freq_hz)
{
    return energy_per_flit * flits_per_cycle * freq_hz;
}

} // namespace

int
main()
{
    report::Table t;
    t.title = "Section 3.2 validation targets";
    t.headers = {"router", "estimate", "published reference"};

    // --- Alpha 21364-class router -------------------------------
    // 0.18 um, 1.5 V, 1.2 GHz; 8 ports (4 network + 4 local
    // cache/memory/IO), 72-bit flits (64 data + ECC), deep per-port
    // packet buffers (~128 flits), 8x8 crossbar.
    {
        const tech::TechNode alpha =
            tech::TechNode::scaled(0.18, 1.5, 1.2e9);
        const power::BufferModel buf(alpha, {128, 72, 1, 1});
        const power::CrossbarModel xbar(
            alpha, {8, 8, 72, power::CrossbarKind::Matrix, 0.0});
        const power::ArbiterModel arb(
            alpha, {7, power::ArbiterKind::Matrix, xbar.controlCap()});

        const double e_flit = buf.avgWriteEnergy() + buf.readEnergy() +
                              arb.avgArbitrationEnergy() +
                              xbar.avgTraversalEnergy();
        // Sustained utilization of a busy multiprocessor fabric port.
        const double util = 0.35;
        const double router_core =
            8.0 * streamPower(e_flit, util, alpha.freqHz);
        // The 21364 drives ~4 off-chip network links; per the paper's
        // chip-to-chip accounting these burn constant multi-watt
        // power. 3 W per link mirrors the Section 4.4 assumption.
        const double links = 4.0 * 3.0;

        t.addRow({"Alpha 21364-class (8p, 72b, 0.18um, 1.2GHz)",
                  fmt(router_core, 2) + " W core + " +
                      fmt(links, 0) + " W links = " +
                      fmt(router_core + links, 1) + " W",
                  "router + links = 25 W (of 125 W chip)"});
        t.addRow({"  per-flit router energy", fmtEng(e_flit, "J", 2),
                  "(not published)"});
    }

    // --- IBM InfiniBand 8-port 12X switch-class -----------------
    // Central-buffered, 8 ports, 32-bit internal flits at 1 GHz-class
    // core; 8 constant-power 12X links at 3 W.
    {
        const tech::TechNode ib = tech::TechNode::chipToChip100nm();
        const power::CentralBufferModel cbuf(ib,
                                             {4, 2560, 32, 2, 2, 8, 2});
        const power::BufferModel fifo(ib, {64, 32, 1, 1});
        const power::ArbiterModel arb(ib,
                                      {8, power::ArbiterKind::Matrix,
                                       0.0});

        const double e_flit = fifo.avgWriteEnergy() +
                              fifo.readEnergy() +
                              cbuf.avgWriteEnergy() +
                              cbuf.avgReadEnergy() +
                              2.0 * arb.avgArbitrationEnergy();
        const double util = 0.5; // switches run their links hard
        const double core = 8.0 * streamPower(e_flit, util, ib.freqHz);
        const double links = 8.0 * 3.0;

        t.addRow({"InfiniBand 8-port 12X-class (CB, 32b, 1GHz)",
                  fmt(core, 2) + " W core + " + fmt(links, 0) +
                      " W links = " + fmt(core + links, 1) + " W",
                  "switch ~15 W of a 40 W blade; 3 W per 12X link"});
        t.addRow({"  per-flit switch energy", fmtEng(e_flit, "J", 2),
                  "(not published)"});
    }

    std::printf("%s\n", report::formatTable(t).c_str());
    std::printf(
        "Reading: link-dominated totals land in the published decade; "
        "the dynamic cores sit below the\npaper's Cacti-0.8um-scaled "
        "estimates (see EXPERIMENTS.md note B). The paper itself "
        "reported only\n\"within ballpark\" against designer "
        "guesstimates, with no error margins.\n");
    return 0;
}
