/**
 * @file
 * Serial cycle-kernel throughput benchmark: runs one Simulation (no
 * sweep parallelism — this measures the single-core kernel the
 * intra-sim parallelism roadmap item builds on) on two reference
 * configurations and reports flits/sec:
 *
 *  - vc16:  the paper's 4x4 torus VC router (2 VCs x 8 flits,
 *           256-bit flits) — the reference config every other bench
 *           uses.
 *  - k16n2: a 16-ary 2-cube (256 routers) of the same router — the
 *           "large network bound by one slow core" workload from
 *           ROADMAP item 1.
 *
 * Each config runs ORION_REPS times (default 3) and the best wall
 * time wins (single runs on a loaded machine are noisier than the
 * effects tracked). Results land in BENCH_kernel.json; tools/check.sh
 * gates >10% flits/sec regressions against the committed copy.
 *
 * Determinism digests (mean latency, network power, flits ejected)
 * are emitted at full precision so any kernel optimization can be
 * checked for bit-identical reports against a pre-change run.
 *
 * Environment knobs:
 *  - ORION_SAMPLE: sample packets per run (default 10000)
 *  - ORION_REPS: repetitions per config (default 3)
 *  - ORION_BENCH_JSON: output path (default "BENCH_kernel.json")
 *  - ORION_KERNEL_BASELINE: optional path to a previously written
 *    BENCH_kernel.json; when set, per-config speedup fields vs that
 *    baseline are included in the output.
 *  - ORION_KERNEL_CANCEL: when set (any value), every run carries an
 *    armed-but-never-fired core::CancelToken, measuring the hot-path
 *    cost of the per-cycle cancellation check. tools/check.sh's
 *    kernel leg runs this mode against the same committed gate, so a
 *    cancellation-check regression in the cycle kernel fails CI like
 *    any other kernel regression.
 */

#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/cancel.hh"

namespace {

using namespace orion;
using namespace orion::bench;

using Clock = std::chrono::steady_clock;

struct KernelResult
{
    std::string name;
    unsigned nodes = 0;
    double injectionRate = 0.0;
    std::uint64_t samplePackets = 0;
    double wallSeconds = 0.0;
    sim::Cycle totalCycles = 0;
    std::uint64_t flitsEjected = 0;
    std::uint64_t flitsForwarded = 0;
    double flitsPerSecond = 0.0;
    double hopFlitsPerSecond = 0.0;
    double cyclesPerSecond = 0.0;
    bool completed = false;
    /// Determinism digests (must be bit-identical across kernels).
    double avgLatencyCycles = 0.0;
    double networkPowerWatts = 0.0;
};

KernelResult
runConfig(const std::string& name, const NetworkConfig& net,
          double rate, unsigned reps)
{
    SimConfig sim = defaultSimConfig();
    TrafficConfig traffic;
    traffic.pattern = net::TrafficPattern::UniformRandom;
    traffic.injectionRate = rate;

    // Cancellation-overhead mode: a live token with a deadline far
    // beyond any bench run, so the kernel pays the real per-cycle
    // cancelled() load and the periodic deadline poll without ever
    // stopping early.
    core::CancelToken cancel_token;
    if (std::getenv("ORION_KERNEL_CANCEL") != nullptr) {
        cancel_token.armDeadline(86400.0);
        sim.cancel = &cancel_token;
    }

    KernelResult best;
    best.name = name;
    for (unsigned rep = 0; rep < reps; ++rep) {
        Simulation s(net, traffic, sim);
        const auto start = Clock::now();
        const Report r = s.run();
        const std::chrono::duration<double> elapsed =
            Clock::now() - start;

        KernelResult k;
        k.name = name;
        k.nodes = s.network().topology().numNodes();
        k.injectionRate = rate;
        k.samplePackets = sim.samplePackets;
        k.wallSeconds = elapsed.count();
        k.totalCycles = r.totalCycles;
        k.completed = r.completed;
        k.avgLatencyCycles = r.avgLatencyCycles;
        k.networkPowerWatts = r.networkPowerWatts;
        for (unsigned i = 0; i < k.nodes; ++i) {
            k.flitsEjected +=
                s.network().endpoint(static_cast<int>(i))
                    .flitsEjectedTotal();
            k.flitsForwarded +=
                s.network().router(static_cast<int>(i))
                    .flitsForwarded();
        }
        k.flitsPerSecond =
            static_cast<double>(k.flitsEjected) / k.wallSeconds;
        k.hopFlitsPerSecond =
            static_cast<double>(k.flitsForwarded) / k.wallSeconds;
        k.cyclesPerSecond =
            static_cast<double>(k.totalCycles) / k.wallSeconds;
        if (rep == 0 || k.wallSeconds < best.wallSeconds)
            best = k;
    }
    return best;
}

/** Crude extraction of "configs.<name>.flits_per_s" from a previously
 * written BENCH_kernel.json (no JSON library in the toolchain). */
std::optional<double>
baselineFlitsPerSecond(const std::string& json, const std::string& name)
{
    const std::string key = "\"" + name + "\"";
    std::size_t at = json.find(key);
    if (at == std::string::npos)
        return std::nullopt;
    at = json.find("\"flits_per_s\"", at);
    if (at == std::string::npos)
        return std::nullopt;
    at = json.find(':', at);
    if (at == std::string::npos)
        return std::nullopt;
    return std::strtod(json.c_str() + at + 1, nullptr);
}

std::string
readFile(const char* path)
{
    std::FILE* f = std::fopen(path, "rb");
    if (f == nullptr)
        return {};
    std::string out;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

void
writeConfigJson(std::FILE* f, const KernelResult& k,
                std::optional<double> baseline, bool last)
{
    std::fprintf(
        f,
        "    \"%s\": {\n"
        "      \"nodes\": %u,\n"
        "      \"injection_rate\": %.4f,\n"
        "      \"sample_packets\": %llu,\n"
        "      \"completed\": %s,\n"
        "      \"wall_s\": %.4f,\n"
        "      \"total_cycles\": %llu,\n"
        "      \"flits_ejected\": %llu,\n"
        "      \"flits_forwarded\": %llu,\n"
        "      \"flits_per_s\": %.1f,\n"
        "      \"hop_flits_per_s\": %.1f,\n"
        "      \"cycles_per_s\": %.1f,\n"
        "      \"avg_latency_cycles\": %.17g,\n"
        "      \"network_power_w\": %.17g",
        k.name.c_str(), k.nodes, k.injectionRate,
        static_cast<unsigned long long>(k.samplePackets),
        k.completed ? "true" : "false", k.wallSeconds,
        static_cast<unsigned long long>(k.totalCycles),
        static_cast<unsigned long long>(k.flitsEjected),
        static_cast<unsigned long long>(k.flitsForwarded),
        k.flitsPerSecond, k.hopFlitsPerSecond, k.cyclesPerSecond,
        k.avgLatencyCycles, k.networkPowerWatts);
    if (baseline && *baseline > 0.0) {
        std::fprintf(f,
                     ",\n      \"baseline_flits_per_s\": %.1f,\n"
                     "      \"speedup_vs_baseline\": %.3f",
                     *baseline, k.flitsPerSecond / *baseline);
    }
    std::fprintf(f, "\n    }%s\n", last ? "" : ",");
}

} // namespace

int
main()
{
    const unsigned reps =
        static_cast<unsigned>(envU64("ORION_REPS", 3));

    // Reference config 1: the paper's 4x4 VC16 network.
    const NetworkConfig vc16 = NetworkConfig::vc16();

    // Reference config 2: 16-ary 2-cube of the same router. The
    // per-node saturation rate shrinks with radix (DOR mean hop count
    // ~k/2 per dimension), so inject well below it.
    NetworkConfig k16n2 = NetworkConfig::vc16();
    k16n2.net.dims = {16, 16};

    std::printf("Serial cycle-kernel throughput — best of %u runs\n\n",
                reps);

    std::vector<KernelResult> results;
    results.push_back(runConfig("vc16", vc16, 0.06, reps));
    results.push_back(runConfig("k16n2", k16n2, 0.02, reps));

    report::Table t;
    t.headers = {"config",  "nodes",      "wall (s)", "Mflits/s",
                 "Mhops/s", "Mcycles/s",  "completed"};
    for (const KernelResult& k : results) {
        t.addRow({k.name, std::to_string(k.nodes),
                  report::fmt(k.wallSeconds, 3),
                  report::fmt(k.flitsPerSecond / 1e6, 3),
                  report::fmt(k.hopFlitsPerSecond / 1e6, 3),
                  report::fmt(k.cyclesPerSecond / 1e6, 3),
                  k.completed ? "yes" : "NO"});
    }
    std::printf("%s\n", report::formatTable(t).c_str());

    const char* baseline_path = std::getenv("ORION_KERNEL_BASELINE");
    const std::string baseline_json =
        baseline_path != nullptr ? readFile(baseline_path)
                                 : std::string{};

    const char* json_path = std::getenv("ORION_BENCH_JSON");
    const std::string path =
        json_path != nullptr ? json_path : "BENCH_kernel.json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"benchmark\": \"kernel_speed\",\n"
                 "  \"serial\": true,\n"
                 "  \"reps\": %u,\n"
                 "%s,\n"
                 "  \"configs\": {\n",
                 reps, buildJsonObject().c_str());
    for (std::size_t i = 0; i < results.size(); ++i) {
        const std::optional<double> base =
            baseline_json.empty()
                ? std::nullopt
                : baselineFlitsPerSecond(baseline_json,
                                         results[i].name);
        writeConfigJson(f, results[i], base,
                        i + 1 == results.size());
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());

    bool ok = true;
    for (const KernelResult& k : results)
        ok = ok && k.completed;
    return ok ? 0 : 1;
}
