/**
 * @file
 * The paper's Section 4.4 closing observation, as its own experiment:
 *
 *  "the results do highlight the distinct difference between
 *   chip-to-chip high-speed links whose power dissipation is
 *   traffic-insensitive, and on-chip links whose power consumption
 *   depends heavily on traffic. Our results clearly point to a need
 *   to address the sizable power consumed by chip-to-chip links that
 *   is invariant to network load."
 *
 * Same router microarchitecture (8 VCs x 8 flits), same topology,
 * both link regimes, swept over load: on-chip link power scales with
 * traffic; chip-to-chip link power is a flat 96 W (32 links x 3 W)
 * whether the network is idle or saturated.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"

int
main()
{
    using namespace orion;
    using namespace orion::bench;

    SimConfig sim = defaultSimConfig();
    sim.samplePackets =
        std::min<std::uint64_t>(sim.samplePackets, 5000);

    // On-chip regime: the Section 4.2 network.
    const NetworkConfig onchip = NetworkConfig::vc64();

    // Chip-to-chip regime: identical router microarchitecture, the
    // Section 4.4 link assumption (3 W per link, constant).
    NetworkConfig c2c = NetworkConfig::vc64();
    c2c.tech = tech::TechNode::chipToChip100nm();
    c2c.linkType = LinkType::ChipToChip;
    c2c.c2cLinkPowerWatts = 3.0;

    TrafficConfig traffic;
    const std::vector<double> rates = {0.0, 0.03, 0.08, 0.13, 0.18};

    std::printf("Link power regimes — identical VC routers (8 VCs x 8 "
                "flits), 4x4 torus\n");
    std::printf("on-chip: 3 mm capacitive wires at 2 GHz; "
                "chip-to-chip: 3 W constant per link at 1 GHz\n\n");

    report::Table t;
    t.headers = {"rate",
                 "on-chip link W",
                 "on-chip link share",
                 "c2c link W",
                 "c2c link share"};
    for (const double rate : rates) {
        TrafficConfig tr = traffic;
        tr.injectionRate = rate;

        Simulation a(onchip, tr, sim);
        const Report ra = a.run();
        Simulation b(c2c, tr, sim);
        const Report rb = b.run();

        const auto share = [](const Report& r) {
            return r.networkPowerWatts > 0.0
                       ? report::fmt(100.0 * r.breakdownWatts.link /
                                         r.networkPowerWatts,
                                     1) + " %"
                       : std::string("-");
        };
        t.addRow({
            rateLabel(rate),
            report::fmt(ra.breakdownWatts.link, 2),
            share(ra),
            report::fmt(rb.breakdownWatts.link, 2),
            share(rb),
        });
    }
    std::printf("%s", report::formatTable(t).c_str());
    std::printf("\nOn-chip link power rises from zero with load "
                "(activity-proportional); chip-to-chip link power\n"
                "is identical at idle and at saturation — the 'power "
                "invariant to network load' the paper flags\nas the "
                "problem to solve (and that link DVS, see "
                "example_dvs_links, cannot touch in this regime).\n");
    return 0;
}
