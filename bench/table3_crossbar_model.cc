/**
 * @file
 * Table 3 reproduction: crossbar power models.
 *
 * Prints the matrix-crossbar capacitances (C_in, C_out, C_xb_ctr) and
 * traversal energies for the paper's configurations, plus the
 * multiplexer-tree alternative the paper also models.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/report.hh"
#include "power/crossbar_model.hh"
#include "tech/tech_node.hh"

int
main()
{
    using namespace orion;
    using orion::report::fmt;
    using orion::report::fmtEng;

    const tech::TechNode tech = tech::TechNode::onChip100nm();

    struct Config
    {
        const char* name;
        power::CrossbarParams params;
    };
    const std::vector<Config> configs = {
        {"walkthrough 5x5x32 matrix",
         {5, 5, 32, power::CrossbarKind::Matrix, 0.0}},
        {"on-chip 5x5x256 matrix",
         {5, 5, 256, power::CrossbarKind::Matrix, 1.08e-12}},
        {"on-chip 5x5x256 mux-tree",
         {5, 5, 256, power::CrossbarKind::MuxTree, 1.08e-12}},
        {"XB 5x5x32 matrix",
         {5, 5, 32, power::CrossbarKind::Matrix, 0.0}},
        {"8x8x128 matrix",
         {8, 8, 128, power::CrossbarKind::Matrix, 0.0}},
        {"8x8x128 mux-tree",
         {8, 8, 128, power::CrossbarKind::MuxTree, 0.0}},
    };

    std::printf("Table 3 — crossbar power models "
                "(0.1 um, Vdd = %.1f V)\n\n",
                tech.vdd);

    report::Table t;
    t.headers = {"configuration", "I", "O",     "W",     "L_in",
                 "L_out",         "C_in/bit",   "C_out/bit",
                 "C_xb_ctr",      "E_xb(avg)",  "area"};
    for (const auto& c : configs) {
        const power::CrossbarModel m(tech, c.params);
        t.addRow({
            c.name,
            std::to_string(c.params.inputs),
            std::to_string(c.params.outputs),
            std::to_string(c.params.width),
            fmt(m.inputLengthUm(), 0) + " um",
            fmt(m.outputLengthUm(), 0) + " um",
            fmtEng(m.inputCap(), "F", 1),
            fmtEng(m.outputCap(), "F", 1),
            fmtEng(m.controlCap(), "F", 1),
            fmtEng(m.avgTraversalEnergy(), "J", 2),
            fmt(m.areaUm2() / 1e6, 3) + " mm2",
        });
    }
    std::printf("%s\n", report::formatTable(t).c_str());

    report::Table s;
    s.title = "matrix E_xb scaling with port count (W = 256)";
    s.headers = {"ports", "E_xb(avg)", "E_xb_ctr"};
    for (const unsigned p : {2u, 4u, 5u, 8u, 16u}) {
        const power::CrossbarModel m(
            tech, {p, p, 256, power::CrossbarKind::Matrix, 0.0});
        s.addRow({std::to_string(p),
                  fmtEng(m.avgTraversalEnergy(), "J", 2),
                  fmtEng(m.controlEnergy(), "J", 2)});
    }
    std::printf("%s", report::formatTable(s).c_str());
    return 0;
}
